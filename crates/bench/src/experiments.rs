//! The experiment functions — one per table/figure of `EXPERIMENTS.md`.
//!
//! Each returns a [`Table`] so the `repro` binary can print it; the
//! Criterion benches in `benches/` re-measure the timing figures with
//! proper statistics (the timings here are single-shot wall-clock, good
//! enough to see the orders of magnitude the paper talks about).

use crate::baseline::syntactic_usable;
use crate::report::Table;
use crate::workloads::{
    chain_catalog, chain_query, chain_view, t5_workload, telephony_query, telephony_v1,
    telephony_view_pool,
};
use aggview::engine::datagen::{random_database, telephony, telephony_catalog, TelephonyConfig};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::gen::{embedded_view, experiment_catalog, random_query, GenConfig};
use aggview::run::{execute_rewriting, materialize_views, rewriting_equivalent};
use aggview_catalog::{Catalog, TableSchema};
use aggview_core::{Canonical, RewriteOptions, Rewriter, Strategy, ViewDef};
use aggview_sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

/// One T1 case: a worked example from the paper.
struct T1Case {
    id: &'static str,
    description: &'static str,
    catalog: Catalog,
    db: Database,
    query: &'static str,
    views: Vec<ViewDef>,
    strategy: Strategy,
    expect_usable: bool,
}

fn r1r2_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
        .expect("fresh");
    cat.add_table(TableSchema::new("R2", ["E", "F"]))
        .expect("fresh");
    cat
}

fn r1r2_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut r1 = Relation::empty(["A", "B", "C", "D"]);
    let mut r2 = Relation::empty(["E", "F"]);
    for _ in 0..60 {
        r1.push((0..4).map(|_| Value::Int(rng.random_range(0..5))).collect());
        r2.push((0..2).map(|_| Value::Int(rng.random_range(0..5))).collect());
    }
    db.insert("R1", r1);
    db.insert("R2", r2);
    db
}

fn t1_cases() -> Vec<T1Case> {
    let view = |name: &str, sql: &str| ViewDef::new(name, parse_query(sql).expect("valid SQL"));
    let mut cases = Vec::new();

    // Example 1.1 — the motivating telephony example.
    cases.push(T1Case {
        id: "Ex 1.1",
        description: "monthly-earnings view answers annual revenue query",
        catalog: telephony_catalog(),
        db: telephony(
            &TelephonyConfig {
                n_calls: 4000,
                ..TelephonyConfig::default()
            },
            1,
        ),
        query: "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
                FROM Calls, Calling_Plans \
                WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
                GROUP BY Calling_Plans.Plan_Id, Plan_Name HAVING SUM(Charge) < 100000000",
        views: vec![view(
            "V1",
            "SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge) AS Monthly_Earnings \
             FROM Calls, Calling_Plans WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
             GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
        )],
        strategy: Strategy::Weighted,
        expect_usable: true,
    });

    // Example 3.1 — conjunctive view with residual D = 6.
    let cat31 = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B"]))
            .expect("fresh");
        cat.add_table(TableSchema::new("R2", ["C", "D"]))
            .expect("fresh");
        cat
    };
    let db31 = {
        let mut rng = StdRng::seed_from_u64(31);
        let mut db = Database::new();
        let mut r1 = Relation::empty(["A", "B"]);
        let mut r2 = Relation::empty(["C", "D"]);
        for _ in 0..60 {
            r1.push(vec![
                Value::Int(rng.random_range(0..5)),
                Value::Int(rng.random_range(4..9)),
            ]);
            r2.push(vec![
                Value::Int(rng.random_range(0..5)),
                Value::Int(rng.random_range(4..9)),
            ]);
        }
        db.insert("R1", r1);
        db.insert("R2", r2);
        db
    };
    cases.push(T1Case {
        id: "Ex 3.1",
        description: "conjunctive view replaces both tables, residual D=6",
        catalog: cat31,
        db: db31,
        query: "SELECT A, SUM(B) FROM R1, R2 WHERE A = C AND B = 6 AND D = 6 GROUP BY A",
        views: vec![view("V1", "SELECT C, D FROM R1, R2 WHERE A = C AND B = D")],
        strategy: Strategy::Weighted,
        expect_usable: true,
    });

    // Example 4.1 — coalescing subgroups.
    cases.push(T1Case {
        id: "Ex 4.1",
        description: "COUNT of coarse groups = SUM of fine COUNTs",
        catalog: r1r2_catalog(),
        db: r1r2_db(41),
        query: "SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E",
        views: vec![view(
            "V1",
            "SELECT A, C, COUNT(D) AS N FROM R1 WHERE B = D GROUP BY A, C",
        )],
        strategy: Strategy::Weighted,
        expect_usable: true,
    });

    // Example 4.2/V1 — lost multiplicities, no COUNT: unusable.
    cases.push(T1Case {
        id: "Ex 4.2/V1",
        description: "SUM-only view cannot recover multiplicities",
        catalog: r1r2_catalog(),
        db: r1r2_db(42),
        query: "SELECT A, SUM(E) FROM R1, R2 GROUP BY A",
        views: vec![view("V1", "SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B")],
        strategy: Strategy::Weighted,
        expect_usable: false,
    });

    // Example 4.2/V2 — COUNT column recovers multiplicities (both
    // strategies).
    for (id, strategy) in [
        ("Ex 4.2/V2 (weighted)", Strategy::Weighted),
        ("Ex 4.2/V2 (paper V^a)", Strategy::PaperFaithful),
    ] {
        cases.push(T1Case {
            id: if strategy == Strategy::Weighted {
                "Ex 4.2/V2-W"
            } else {
                "Ex 4.2/V2-Va"
            },
            description: if strategy == Strategy::Weighted {
                "multiplicity recovery via SUM(N*E)"
            } else {
                "multiplicity recovery via the paper's V^a"
            },
            catalog: r1r2_catalog(),
            db: r1r2_db(43),
            query: "SELECT A, SUM(E) FROM R1, R2 GROUP BY A",
            views: vec![view(
                "V2",
                "SELECT A, B, SUM(C) AS S, COUNT(C) AS N FROM R1 GROUP BY A, B",
            )],
            strategy,
            expect_usable: true,
        });
        let _ = id;
    }

    // Example 4.4 — constraint on an aggregated-away column: unusable.
    cases.push(T1Case {
        id: "Ex 4.4",
        description: "WHERE constrains a column the view aggregates away",
        catalog: r1r2_catalog(),
        db: r1r2_db(44),
        query: "SELECT A, E, SUM(B) FROM R1, R2 WHERE B = F GROUP BY A, E",
        views: vec![view(
            "V",
            "SELECT A, E, F, SUM(B) AS S FROM R1, R2 GROUP BY A, E, F",
        )],
        strategy: Strategy::Weighted,
        expect_usable: false,
    });

    // Example 4.5 — aggregation view, conjunctive query: unusable.
    let cat45 = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
            .expect("fresh");
        cat
    };
    let db45 = {
        let mut rng = StdRng::seed_from_u64(45);
        let mut db = Database::new();
        let mut r1 = Relation::empty(["A", "B", "C"]);
        for _ in 0..40 {
            r1.push((0..3).map(|_| Value::Int(rng.random_range(0..4))).collect());
        }
        db.insert("R1", r1);
        db
    };
    cases.push(T1Case {
        id: "Ex 4.5",
        description: "aggregation view cannot answer a conjunctive query",
        catalog: cat45,
        db: db45,
        query: "SELECT A, B FROM R1",
        views: vec![view(
            "V1",
            "SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B",
        )],
        strategy: Strategy::Weighted,
        expect_usable: false,
    });

    // Example 5.1 — keys enable the many-to-1 mapping.
    let cat51 = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
            .expect("fresh");
        cat
    };
    let db51 = {
        let mut rng = StdRng::seed_from_u64(51);
        let mut db = Database::new();
        let mut r1 = Relation::empty(["A", "B", "C"]);
        for a in 0..40 {
            r1.push(vec![
                Value::Int(a),
                Value::Int(rng.random_range(0..4)),
                Value::Int(rng.random_range(0..4)),
            ]);
        }
        db.insert("R1", r1);
        db
    };
    cases.push(T1Case {
        id: "Ex 5.1",
        description: "many-to-1 mapping justified by key A",
        catalog: cat51,
        db: db51,
        query: "SELECT A FROM R1 WHERE B = C",
        views: vec![view(
            "V1",
            "SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C",
        )],
        strategy: Strategy::Weighted,
        expect_usable: true,
    });

    cases
}

/// T1 — every worked example: expected vs. observed usability, and engine
/// verification of each produced rewriting.
pub fn t1_paper_examples() -> Table {
    let mut table = Table::new(
        "T1 — paper examples: usability decisions and verified rewritings",
        &["example", "expected", "found", "verified", "description"],
    );
    for case in t1_cases() {
        let rewriter = Rewriter::with_options(
            &case.catalog,
            RewriteOptions {
                strategy: case.strategy,
                ..RewriteOptions::default()
            },
        );
        let query = parse_query(case.query).expect("valid SQL");
        let rewritings = rewriter.rewrite(&query, &case.views).expect("rewrite runs");
        let found = !rewritings.is_empty();
        let mut verified = true;
        if found {
            let mut db = case.db.clone();
            materialize_views(&mut db, &case.views).expect("views materialize");
            for rw in &rewritings {
                verified &= rewriting_equivalent(&query, rw, &db).expect("rewriting executes");
            }
        }
        table.push(vec![
            case.id.to_string(),
            if case.expect_usable {
                "usable"
            } else {
                "not usable"
            }
            .to_string(),
            if found { "usable" } else { "not usable" }.to_string(),
            if !found {
                "n/a".to_string()
            } else if verified {
                "equivalent".to_string()
            } else {
                "MISMATCH".to_string()
            },
            case.description.to_string(),
        ]);
        assert_eq!(found, case.expect_usable, "{}: decision mismatch", case.id);
        assert!(verified, "{}: rewriting not equivalent", case.id);
    }
    table
}

/// T2 — randomized soundness (Theorems 3.1/4.1): every rewriting found on
/// random (query, views, database) triples is multiset-equivalent.
pub fn t2_soundness(trials: u64) -> Table {
    let catalog = experiment_catalog();
    let cfg = GenConfig::default();
    let mut checked = 0u64;
    let mut violations = 0u64;
    let mut with_rewritings = 0u64;
    for strategy in [Strategy::Weighted, Strategy::PaperFaithful] {
        let rewriter = Rewriter::with_options(
            &catalog,
            RewriteOptions {
                strategy,
                max_rewritings: 16,
                ..RewriteOptions::default()
            },
        );
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let query = random_query(&mut rng, &catalog, &cfg);
            let mut views = Vec::new();
            if let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV0", false) {
                views.push(v);
            }
            if let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV1", true) {
                views.push(v);
            }
            let rewritings = rewriter.rewrite(&query, &views).expect("rewrite runs");
            if rewritings.is_empty() {
                continue;
            }
            with_rewritings += 1;
            let mut db = random_database(&catalog, 25, 4, seed.wrapping_mul(97));
            materialize_views(&mut db, &views).expect("views materialize");
            for rw in &rewritings {
                checked += 1;
                if !rewriting_equivalent(&query, rw, &db).expect("rewriting executes") {
                    violations += 1;
                }
            }
        }
    }
    let mut table = Table::new(
        "T2 — randomized soundness (both strategies)",
        &[
            "trials",
            "instances with rewritings",
            "rewritings checked",
            "violations",
        ],
    );
    table.push(vec![
        (trials * 2).to_string(),
        with_rewritings.to_string(),
        checked.to_string(),
        violations.to_string(),
    ]);
    assert_eq!(violations, 0, "soundness violation detected");
    table
}

/// T3 — Church-Rosser (Theorem 3.2.2): the set of rewritings is invariant
/// under view ordering.
pub fn t3_church_rosser(instances: u64) -> Table {
    let catalog = experiment_catalog();
    let cfg = GenConfig {
        inequalities: false,
        ..GenConfig::default()
    };
    let rewriter = Rewriter::new(&catalog);
    let mut compared = 0u64;
    let mut mismatches = 0u64;
    let mut multi = 0u64;
    for seed in 0..instances {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let query = random_query(&mut rng, &catalog, &cfg);
        let mut views = Vec::new();
        for i in 0..3 {
            if let Some(v) = embedded_view(&mut rng, &query, &catalog, &format!("V{i}"), i == 2) {
                views.push(v);
            }
        }
        if views.len() < 2 {
            continue;
        }
        let sig = |rws: &[aggview_core::Rewriting]| -> BTreeSet<Vec<String>> {
            rws.iter()
                .map(|r| {
                    let mut v = r.views_used.clone();
                    v.sort();
                    v
                })
                .collect()
        };
        let fwd = rewriter.rewrite(&query, &views).expect("rewrite runs");
        let mut rev_views = views.clone();
        rev_views.reverse();
        let rev = rewriter.rewrite(&query, &rev_views).expect("rewrite runs");
        compared += 1;
        if fwd.len() > 1 {
            multi += 1;
        }
        if sig(&fwd) != sig(&rev) {
            mismatches += 1;
        }
    }
    let mut table = Table::new(
        "T3 — Church-Rosser: view order does not change the rewriting set",
        &[
            "instances compared",
            "multi-rewriting instances",
            "order mismatches",
        ],
    );
    table.push(vec![
        compared.to_string(),
        multi.to_string(),
        mismatches.to_string(),
    ]);
    assert_eq!(mismatches, 0, "Church-Rosser violation detected");
    table
}

/// T4 — completeness on constructed instances: embedded conjunctive views
/// are usable by construction, so a rewriting must always be found; with
/// two disjoint embedded views over a two-table query, the combined
/// rewriting must be found too.
pub fn t4_completeness(instances: u64) -> Table {
    let catalog = experiment_catalog();
    let cfg = GenConfig {
        inequalities: false,
        ..GenConfig::default()
    };
    let rewriter = Rewriter::new(&catalog);
    let mut cases = 0u64;
    let mut found = 0u64;
    let mut combined_cases = 0u64;
    let mut combined_found = 0u64;
    for seed in 0..instances {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5000));
        let query = random_query(&mut rng, &catalog, &cfg);
        let Some(v) = embedded_view(&mut rng, &query, &catalog, "EV", false) else {
            continue;
        };
        cases += 1;
        let rws = rewriter
            .rewrite(&query, std::slice::from_ref(&v))
            .expect("rewrite runs");
        if !rws.is_empty() {
            found += 1;
        }
        // Combined: a second embedded view over the complement is usable
        // together with the first when they cover disjoint occurrences.
        if query.from.len() >= 2 {
            if let Some(v2) = embedded_view(&mut rng, &query, &catalog, "EV2", false) {
                combined_cases += 1;
                let rws = rewriter
                    .rewrite(&query, &[v.clone(), v2])
                    .expect("rewrite runs");
                if rws.iter().any(|r| !r.views_used.is_empty()) {
                    combined_found += 1;
                }
            }
        }
    }
    let mut table = Table::new(
        "T4 — completeness on constructed (usable-by-construction) instances",
        &[
            "cases",
            "rewriting found",
            "multi-view cases",
            "multi-view found",
        ],
    );
    table.push(vec![
        cases.to_string(),
        found.to_string(),
        combined_cases.to_string(),
        combined_found.to_string(),
    ]);
    assert_eq!(cases, found, "completeness failure on an embedded view");
    table
}

/// T5 — ablation: closure-based conditions vs. purely syntactic matching
/// (the Section 6 comparison with \[GHQ95\]).
pub fn t5_closure_vs_syntactic() -> Table {
    let catalog = experiment_catalog();
    let rewriter = Rewriter::new(&catalog);
    let mut table = Table::new(
        "T5 — closure-based usability vs. syntactic matching",
        &[
            "case",
            "needs closure reasoning",
            "full rewriter",
            "syntactic matcher",
        ],
    );
    let mut full_count = 0;
    let mut syn_count = 0;
    for (name, query, view, needs_reasoning) in t5_workload() {
        let full = !rewriter
            .rewrite(&query, std::slice::from_ref(&view))
            .expect("rewrite runs")
            .is_empty();
        let qc = Canonical::from_query(&query, &catalog).expect("canonicalizes");
        let vc = Canonical::from_query(&view.query, &catalog).expect("canonicalizes");
        let syn = syntactic_usable(&qc, &vc);
        full_count += full as u32;
        syn_count += syn as u32;
        table.push(vec![
            name.to_string(),
            if needs_reasoning { "yes" } else { "no" }.to_string(),
            if full { "usable" } else { "-" }.to_string(),
            if syn { "usable" } else { "-" }.to_string(),
        ]);
        assert!(full, "{name}: the full rewriter must accept every T5 case");
        assert_eq!(
            syn, !needs_reasoning,
            "{name}: syntactic matcher expectation"
        );
    }
    table.push(vec![
        "TOTAL".to_string(),
        String::new(),
        format!("{full_count}/8"),
        format!("{syn_count}/8"),
    ]);
    table
}

/// T6 — ablation: Section 5 key reasoning on Example 5.1-style instances.
pub fn t6_keys_ablation() -> Table {
    let with_keys = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]))
            .expect("fresh");
        cat
    };
    let without_keys = {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
            .expect("fresh");
        cat
    };
    let cases = [
        (
            "Ex 5.1",
            "SELECT A FROM R1 WHERE B = C",
            "SELECT u.A AS A1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C",
        ),
        (
            "diagonal join",
            "SELECT A, B FROM R1 WHERE B = C",
            "SELECT u.A AS A1, u.B AS B1, w.A AS A2 FROM R1 u, R1 w WHERE u.B = w.C",
        ),
    ];
    let mut table = Table::new(
        "T6 — key information enables many-to-1 rewritings",
        &["case", "with keys", "without keys"],
    );
    for (name, q_sql, v_sql) in cases {
        let q = parse_query(q_sql).expect("valid SQL");
        let v = ViewDef::new("V1", parse_query(v_sql).expect("valid SQL"));
        let found_with = !Rewriter::new(&with_keys)
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs")
            .is_empty();
        let found_without = !Rewriter::new(&without_keys)
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs")
            .is_empty();
        table.push(vec![
            name.to_string(),
            if found_with { "usable" } else { "-" }.to_string(),
            if found_without { "usable" } else { "-" }.to_string(),
        ]);
        assert!(
            found_with && !found_without,
            "{name}: key ablation expectation"
        );
    }
    // Section 5.2: DISTINCT substitutes for keys (both results are sets by
    // definition), so this case is usable even on the keyless catalog.
    {
        let q = parse_query("SELECT DISTINCT A FROM R1 WHERE B = 1").expect("valid SQL");
        let v = ViewDef::new(
            "V1",
            parse_query("SELECT DISTINCT A, B FROM R1").expect("valid SQL"),
        );
        let found = !Rewriter::new(&without_keys)
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs")
            .is_empty();
        table.push(vec![
            "DISTINCT (5.2), no keys".to_string(),
            "n/a".to_string(),
            if found { "usable" } else { "-" }.to_string(),
        ]);
        assert!(
            found,
            "Section 5.2 DISTINCT case must be usable without keys"
        );
    }
    table
}

/// T7 — ablation: HAVING move-around (Section 3.3) unlocks usability.
pub fn t7_having_ablation() -> Table {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R", ["A", "B"]))
        .expect("fresh");
    let cases = [
        (
            "grouping-column predicate",
            "SELECT A, SUM(B) FROM R GROUP BY A HAVING A > 5 AND SUM(B) < 100",
            "SELECT A, B FROM R WHERE A > 5",
        ),
        (
            "MAX(B) > c, sole aggregate",
            "SELECT A, MAX(B) FROM R GROUP BY A HAVING MAX(B) > 4",
            "SELECT A, B FROM R WHERE B > 4",
        ),
    ];
    let mut table = Table::new(
        "T7 — HAVING move-around normalization unlocks view usability",
        &["case", "with normalization", "without normalization"],
    );
    for (name, q_sql, v_sql) in cases {
        let q = parse_query(q_sql).expect("valid SQL");
        let v = ViewDef::new("V", parse_query(v_sql).expect("valid SQL"));
        let on = Rewriter::new(&cat);
        let off = Rewriter::with_options(
            &cat,
            RewriteOptions {
                normalize_having: false,
                ..RewriteOptions::default()
            },
        );
        let found_on = !on
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs")
            .is_empty();
        let found_off = !off
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs")
            .is_empty();
        table.push(vec![
            name.to_string(),
            if found_on { "usable" } else { "-" }.to_string(),
            if found_off { "usable" } else { "-" }.to_string(),
        ]);
        assert!(
            found_on && !found_off,
            "{name}: HAVING ablation expectation"
        );
    }
    table
}

/// T8 — the footnote-3 "expand" extension: aggregation views answering
/// conjunctive queries through the interpreted `Nat` table.
pub fn t8_expand() -> Table {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C"]))
        .expect("fresh");
    let db = {
        let mut rng = StdRng::seed_from_u64(80);
        let mut db = Database::new();
        let mut r1 = Relation::empty(["A", "B", "C"]);
        for _ in 0..60 {
            r1.push((0..3).map(|_| Value::Int(rng.random_range(0..4))).collect());
        }
        db.insert("R1", r1);
        db
    };
    let cases = [
        (
            "Ex 4.5 pair",
            "SELECT A, B FROM R1",
            "SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B",
            true,
        ),
        (
            "with residual filter",
            "SELECT A FROM R1 WHERE B = 2",
            "SELECT A, B, COUNT(C) AS N FROM R1 GROUP BY A, B",
            true,
        ),
        (
            "no COUNT column",
            "SELECT A, B FROM R1",
            "SELECT A, B, SUM(C) AS S FROM R1 GROUP BY A, B",
            false,
        ),
    ];
    let mut table = Table::new(
        "T8 — footnote-3 expansion (aggregation view, conjunctive query)",
        &["case", "default (4.5)", "with expand", "verified"],
    );
    for (name, q_sql, v_sql, expect) in cases {
        let q = parse_query(q_sql).expect("valid SQL");
        let v = ViewDef::new("V1", parse_query(v_sql).expect("valid SQL"));
        let plain = Rewriter::new(&cat)
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs");
        let expander = Rewriter::with_options(
            &cat,
            RewriteOptions {
                enable_expand: true,
                ..RewriteOptions::default()
            },
        );
        let expanded = expander
            .rewrite(&q, std::slice::from_ref(&v))
            .expect("rewrite runs");
        let mut verified = "n/a".to_string();
        if let Some(rw) = expanded.first() {
            let mut scratch = db.clone();
            materialize_views(&mut scratch, std::slice::from_ref(&v)).expect("materializes");
            let ok = rewriting_equivalent(&q, rw, &scratch).expect("executes");
            verified = if ok {
                "equivalent".into()
            } else {
                "MISMATCH".into()
            };
            assert!(ok, "{name}: expansion rewriting not equivalent");
        }
        assert!(plain.is_empty(), "{name}: section 4.5 must hold by default");
        assert_eq!(!expanded.is_empty(), expect, "{name}: expand expectation");
        table.push(vec![
            name.to_string(),
            "not usable".to_string(),
            if expanded.is_empty() { "-" } else { "usable" }.to_string(),
            verified,
        ]);
    }
    table
}

/// T9 — the view advisor (paper Section 7 future work): on the telephony
/// workload, the top suggestion must be adopted-and-correct, and must
/// answer the whole related workload.
pub fn t9_advisor() -> Table {
    use aggview_core::advisor::suggest_views;

    let catalog = telephony_catalog();
    let mut db = telephony(
        &TelephonyConfig {
            n_customers: 200,
            n_plans: 10,
            n_calls: 20_000,
            years: vec![1994, 1995],
            months: 12,
        },
        19,
    );
    let mut stats = aggview_core::TableStats::new();
    for (name, rel) in db.iter() {
        stats.set(name.clone(), rel.len());
    }
    let workload = [
        "SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year",
        "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
        "SELECT Plan_Id, Year, COUNT(Call_Id) FROM Calls GROUP BY Plan_Id, Year",
        "SELECT Plan_Id, AVG(Charge) FROM Calls WHERE Year = 1994 GROUP BY Plan_Id",
    ];
    let anchor = parse_query(workload[0]).expect("valid SQL");
    let suggestions = suggest_views(&anchor, &catalog, &stats).expect("advisor runs");
    assert!(!suggestions.is_empty(), "advisor must find a summary view");
    let adopted = suggestions[0].view.clone();
    materialize_views(&mut db, std::slice::from_ref(&adopted)).expect("view builds");

    let rewriter = Rewriter::new(&catalog);
    let mut table = Table::new(
        "T9 — advisor-selected view answering the workload",
        &["query", "answered from view", "verified"],
    );
    for sql in workload {
        let q = parse_query(sql).expect("valid SQL");
        let rws = rewriter
            .rewrite(&q, std::slice::from_ref(&adopted))
            .expect("rewrite runs");
        let (hit, verified) = match rws.first() {
            Some(rw) => {
                let truth = execute(&q, &db).expect("base evaluation");
                let via = execute_rewriting(rw, &db).expect("view evaluation");
                (true, multiset_eq(&truth, &via))
            }
            None => (false, false),
        };
        assert!(hit && verified, "advisor view must answer `{sql}` exactly");
        table.push(vec![
            sql.chars().take(60).collect(),
            "yes".to_string(),
            "equivalent".to_string(),
        ]);
    }
    table
}

/// F1 — the Example 1.1 performance claim: speedup of `Q'` over `Q` as the
/// `Calls` fact table grows.
pub fn f1_speedup(full: bool) -> Table {
    let scales: &[usize] = if full {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let catalog = telephony_catalog();
    let rewriter = Rewriter::new(&catalog);
    let q = telephony_query();
    let v1 = telephony_v1();
    let mut table = Table::new(
        "F1 — Example 1.1 speedup vs. Calls cardinality",
        &[
            "calls",
            "view rows",
            "t(Q) ms",
            "t(Q') ms",
            "speedup",
            "equivalent",
        ],
    );
    for &n in scales {
        let mut db = telephony(
            &TelephonyConfig {
                n_customers: 1000,
                n_plans: 10,
                n_calls: n,
                years: vec![1994, 1995],
                months: 12,
            },
            42,
        );
        materialize_views(&mut db, std::slice::from_ref(&v1)).expect("view materializes");
        let rws = rewriter
            .rewrite(&q, std::slice::from_ref(&v1))
            .expect("rewrite runs");
        let rw = rws.first().expect("Example 1.1 rewriting");
        let t = Instant::now();
        let original = execute(&q, &db).expect("query runs");
        let t_q = t.elapsed();
        let t = Instant::now();
        let via = execute_rewriting(rw, &db).expect("rewriting runs");
        let t_qp = t.elapsed();
        let eq = multiset_eq(&original, &via);
        table.push(vec![
            n.to_string(),
            db.get("V1").expect("present").len().to_string(),
            format!("{:.2}", t_q.as_secs_f64() * 1e3),
            format!("{:.2}", t_qp.as_secs_f64() * 1e3),
            format!("{:.1}x", t_q.as_secs_f64() / t_qp.as_secs_f64().max(1e-9)),
            eq.to_string(),
        ]);
        assert!(eq, "F1: answers must agree at scale {n}");
    }
    table
}

/// F2 — speedup vs. view compression ratio (varying the number of groups
/// in the view while the fact table stays fixed).
pub fn f2_compression(full: bool) -> Table {
    let n_calls = if full { 400_000 } else { 100_000 };
    let catalog = telephony_catalog();
    let rewriter = Rewriter::new(&catalog);
    let q = telephony_query();
    let v1 = telephony_v1();
    let mut table = Table::new(
        "F2 — speedup vs. view compression (groups = plans x months x years)",
        &[
            "plans",
            "view rows",
            "compression",
            "t(Q) ms",
            "t(Q') ms",
            "speedup",
        ],
    );
    for n_plans in [2usize, 10, 50, 250, 1000] {
        let mut db = telephony(
            &TelephonyConfig {
                n_customers: 1000,
                n_plans,
                n_calls,
                years: vec![1994, 1995],
                months: 12,
            },
            7,
        );
        materialize_views(&mut db, std::slice::from_ref(&v1)).expect("view materializes");
        let rws = rewriter
            .rewrite(&q, std::slice::from_ref(&v1))
            .expect("rewrite runs");
        let rw = rws.first().expect("Example 1.1 rewriting");
        let t = Instant::now();
        let original = execute(&q, &db).expect("query runs");
        let t_q = t.elapsed();
        let t = Instant::now();
        let via = execute_rewriting(rw, &db).expect("rewriting runs");
        let t_qp = t.elapsed();
        assert!(multiset_eq(&original, &via));
        let view_rows = db.get("V1").expect("present").len();
        table.push(vec![
            n_plans.to_string(),
            view_rows.to_string(),
            format!("{:.0}x", n_calls as f64 / view_rows as f64),
            format!("{:.2}", t_q.as_secs_f64() * 1e3),
            format!("{:.2}", t_qp.as_secs_f64() * 1e3),
            format!("{:.1}x", t_q.as_secs_f64() / t_qp.as_secs_f64().max(1e-9)),
        ]);
    }
    table
}

/// One measured point of the F3/F4 search-scaling sweeps: sequential vs.
/// parallel timing plus the [`aggview_core::RewriteStats`] counters of the
/// indexed search.
#[derive(Debug, Clone)]
pub struct SearchPoint {
    /// The swept axis value (candidate views for F3, chain length for F4).
    pub x: usize,
    /// Rewritings produced (identical on both paths by construction).
    pub rewritings: usize,
    /// Best-of-k wall time, sequential (`threads = 1`), microseconds.
    pub seq_us: f64,
    /// Best-of-k wall time, parallel (default thread count), microseconds.
    pub par_us: f64,
    /// Candidate `(state, view)` pairs rejected by the signature prefilter.
    pub prefiltered: usize,
    /// Candidate pairs that reached mapping enumeration.
    pub attempted: usize,
    /// Column mappings enumerated.
    pub mappings: usize,
    /// Closure-cache hit rate over the measured (warm) run.
    pub closure_hit_rate: f64,
    /// Worker threads the parallel path used.
    pub threads: usize,
}

impl SearchPoint {
    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.seq_us / self.par_us.max(1e-9)
    }
}

/// Measure one (query, view pool) search point: best-of-`runs` wall times
/// for the sequential baseline (the seed configuration: one thread, no
/// signature prefilter, no closure cache) and the optimized path
/// (parallel + indexed + cached), plus the stats of a final instrumented
/// run. Note the container the repro runs in may expose a single core, in
/// which case the parallel path degenerates to sequential and the whole
/// speedup comes from the prefilter and the closure cache.
fn measure_search_point(
    catalog: &Catalog,
    base: &RewriteOptions,
    q: &aggview_sql::ast::Query,
    pool: &[ViewDef],
    x: usize,
    runs: usize,
) -> SearchPoint {
    use std::num::NonZeroUsize;
    let seq_rewriter = Rewriter::with_options(
        catalog,
        RewriteOptions {
            threads: Some(NonZeroUsize::new(1).expect("nonzero")),
            prefilter: false,
            closure_cache: false,
            ..base.clone()
        },
    );
    let par_rewriter = Rewriter::with_options(catalog, base.clone());
    let mut seq_us = f64::INFINITY;
    let mut par_us = f64::INFINITY;
    let mut n_rws = 0;
    for _ in 0..runs {
        let t = Instant::now();
        let rws = seq_rewriter.rewrite(q, pool).expect("rewrite runs");
        seq_us = seq_us.min(t.elapsed().as_secs_f64() * 1e6);
        n_rws = rws.len();
        let t = Instant::now();
        par_rewriter.rewrite(q, pool).expect("rewrite runs");
        par_us = par_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    let (rws, stats) = par_rewriter
        .rewrite_with_stats(q, pool)
        .expect("rewrite runs");
    assert_eq!(
        rws.len(),
        n_rws,
        "sequential and parallel counts must agree"
    );
    SearchPoint {
        x,
        rewritings: n_rws,
        seq_us,
        par_us,
        prefiltered: stats.candidates_prefiltered,
        attempted: stats.candidates_attempted,
        mappings: stats.mappings_enumerated,
        closure_hit_rate: stats.closure_hit_rate(),
        threads: stats.threads,
    }
}

fn search_table(title: &str, axis: &str, points: &[SearchPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            axis,
            "rewritings",
            "seq us",
            "par us",
            "speedup",
            "prefiltered",
            "attempted",
            "cache hit %",
        ],
    );
    for p in points {
        table.push(vec![
            p.x.to_string(),
            p.rewritings.to_string(),
            format!("{:.0}", p.seq_us),
            format!("{:.0}", p.par_us),
            format!("{:.2}x", p.speedup()),
            p.prefiltered.to_string(),
            p.attempted.to_string(),
            format!("{:.0}", p.closure_hit_rate * 100.0),
        ]);
    }
    table
}

/// F3 data — rewrite-search scaling on the view-pool-size axis.
pub fn f3_points() -> Vec<SearchPoint> {
    let catalog = telephony_catalog();
    let q = telephony_query();
    let base = RewriteOptions::default();
    [1usize, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&n| measure_search_point(&catalog, &base, &q, &telephony_view_pool(n), n, 5))
        .collect()
}

/// F3 — rewrite-search time vs. number of candidate views, sequential vs.
/// parallel, with prefilter / closure-cache counters.
pub fn f3_many_views() -> Table {
    search_table(
        "F3 — rewrite-search time vs. candidate view count",
        "views",
        &f3_points(),
    )
}

/// F4 data — rewrite-search scaling on the query-size axis.
pub fn f4_points() -> Vec<SearchPoint> {
    let catalog = chain_catalog();
    let base = RewriteOptions {
        max_rewritings: 256,
        ..RewriteOptions::default()
    };
    let view = chain_view();
    [2usize, 3, 4, 5, 6, 7, 8]
        .iter()
        .map(|&n| {
            measure_search_point(
                &catalog,
                &base,
                &chain_query(n),
                std::slice::from_ref(&view),
                n,
                3,
            )
        })
        .collect()
}

/// F4 — rewrite-search time vs. query size (self-join chain; the C1
/// mapping space grows combinatorially), sequential vs. parallel.
pub fn f4_query_size() -> Table {
    search_table(
        "F4 — rewrite-search time vs. query size (n self-joined tables)",
        "tables",
        &f4_points(),
    )
}

/// F6 — incremental view maintenance vs. recomputation (the Section 1
/// "transaction recording systems" motivation): time to keep the Example
/// 1.1 monthly summary fresh while call batches stream in.
pub fn f6_maintenance(full: bool) -> Table {
    use aggview::engine::maintenance::{plan_for_view, MaintenancePlan};

    let base_calls = if full { 200_000 } else { 50_000 };
    let batch = 1000usize;
    let n_batches = 20usize;

    // Single-table monthly summary (incrementally maintainable shape).
    let view_q = parse_query(
        "SELECT Plan_Id, Month, Year, SUM(Charge) AS Rev, COUNT(Call_Id) AS N          FROM Calls GROUP BY Plan_Id, Month, Year",
    )
    .expect("valid SQL");

    let mut db = telephony(
        &TelephonyConfig {
            n_customers: 1000,
            n_plans: 10,
            n_calls: base_calls,
            years: vec![1994, 1995],
            months: 12,
        },
        21,
    );
    let mut view = execute(&view_q, &db).expect("view evaluates");
    view.columns = view_q.output_names();

    let MaintenancePlan::Incremental(plan) = plan_for_view(&view_q, &db) else {
        panic!("the monthly summary must be incrementally maintainable");
    };

    // Stream batches, measuring both maintenance paths.
    let mut rng = StdRng::seed_from_u64(99);
    let mut t_incr = 0.0f64;
    let mut t_recompute = 0.0f64;
    for b in 0..n_batches {
        let mut calls = db.get("Calls").expect("present").clone();
        let delta: Vec<Vec<Value>> = (0..batch)
            .map(|i| {
                vec![
                    Value::Int((base_calls + b * batch + i) as i64),
                    Value::Int(rng.random_range(0..1000)),
                    Value::Int(rng.random_range(0..10)),
                    Value::Int(rng.random_range(1..=28)),
                    Value::Int(rng.random_range(1..=12)),
                    Value::Int(if rng.random_bool(0.5) { 1994 } else { 1995 }),
                    Value::Int(rng.random_range(1..=2000)),
                ]
            })
            .collect();
        for row in &delta {
            calls.push(row.clone());
        }
        db.insert("Calls", calls);

        let t = Instant::now();
        plan.apply_insert(&mut view, &delta, None)
            .expect("incremental maintenance");
        t_incr += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut recomputed = execute(&view_q, &db).expect("view evaluates");
        recomputed.columns = view_q.output_names();
        t_recompute += t.elapsed().as_secs_f64();

        assert!(
            multiset_eq(&view, &recomputed),
            "incremental view diverged at batch {b}"
        );
    }

    let mut table = Table::new(
        "F6 — incremental maintenance vs. recomputation (per 1000-row batch)",
        &[
            "base rows",
            "batches",
            "incremental ms",
            "recompute ms",
            "speedup",
        ],
    );
    table.push(vec![
        base_calls.to_string(),
        n_batches.to_string(),
        format!("{:.3}", t_incr / n_batches as f64 * 1e3),
        format!("{:.3}", t_recompute / n_batches as f64 * 1e3),
        format!("{:.0}x", t_recompute / t_incr.max(1e-12)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment functions assert their own invariants; running them
    // here keeps the whole experiment suite green under `cargo test`.

    #[test]
    fn t1_runs() {
        let t = t1_paper_examples();
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn t2_runs_small() {
        t2_soundness(10);
    }

    #[test]
    fn t3_runs_small() {
        t3_church_rosser(10);
    }

    #[test]
    fn t4_runs_small() {
        t4_completeness(10);
    }

    #[test]
    fn t5_runs() {
        let t = t5_closure_vs_syntactic();
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn t6_runs() {
        t6_keys_ablation();
    }

    #[test]
    fn t7_runs() {
        t7_having_ablation();
    }

    #[test]
    fn t8_runs() {
        let t = t8_expand();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn f3_f4_run() {
        assert_eq!(f3_many_views().rows.len(), 7);
        assert_eq!(f4_query_size().rows.len(), 7);
    }

    #[test]
    fn t9_runs() {
        assert_eq!(t9_advisor().rows.len(), 4);
    }

    #[test]
    fn f6_runs_small() {
        assert_eq!(f6_maintenance(false).rows.len(), 1);
    }
}
