//! Regenerate every experiment table and figure of `EXPERIMENTS.md`.
//!
//! Usage:
//!   repro                 # all experiments, quick settings
//!   repro --full          # all experiments, full scale (use --release!)
//!   repro t1 f1 ...       # selected experiments only
//!   repro --json f3 f4    # also write BENCH_1.json (seq-vs-par F3/F4 sweep)
//!   repro --json s1 s2    # also write BENCH_2.json (serving cold-vs-warm,
//!                         # grouped-index probe-vs-scan)
//!   repro --json s3       # also write BENCH_3.json (concurrent shared-store
//!                         # read scaling + write batching)
//!   repro --json s4       # also write BENCH_4.json (warm-serving overhead
//!                         # of the observability layer, obs on vs. --no-obs)
//!   repro --json s5       # also write BENCH_5.json (row vs. columnar
//!                         # scan/aggregate scaling, 1k..100k rows)
//!   repro --json s6       # also write BENCH_6.json (sharded write
//!                         # throughput vs. shard count, publish balance)
//!   repro --rows N s2 s5  # override the S2 group-count / S5 row-count
//!                         # sweeps with one scale point
//!   repro --skew X s6     # skew of the S6 skewed point's partitioning
//!                         # keys (default 1.5; 0 = uniform)

use aggview_bench::experiments as exp;
use aggview_bench::experiments::SearchPoint;
use aggview_bench::report::Table;
use aggview_bench::serving;

/// Hand-rolled JSON for the F3/F4 search points (no serde in this tree).
fn points_json(points: &[SearchPoint], axis: &str) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"{axis}\": {}, \"rewritings\": {}, \"seq_us\": {:.1}, \"par_us\": {:.1}, \
                 \"speedup\": {:.3}, \"prefiltered\": {}, \"attempted\": {}, \
                 \"mappings\": {}, \"closure_hit_rate\": {:.3}, \"threads\": {}}}",
                p.x,
                p.rewritings,
                p.seq_us,
                p.par_us,
                p.speedup(),
                p.prefiltered,
                p.attempted,
                p.mappings,
                p.closure_hit_rate,
                p.threads,
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Hand-rolled JSON for the S1/S2 serving points.
fn serving_json(serving: &[serving::ServingPoint], probe: &[serving::ProbePoint]) -> String {
    let s_rows: Vec<String> = serving
        .iter()
        .map(|p| {
            format!(
                "    {{\"label\": \"{}\", \"write_pct\": {}, \"cold_us\": {:.1}, \
                 \"warm_us\": {:.1}, \"speedup\": {:.1}, \"qps\": {:.0}, \
                 \"hits\": {}, \"misses\": {}, \"invalidations\": {}}}",
                p.label,
                p.write_pct,
                p.cold_us,
                p.warm_us,
                p.speedup(),
                p.qps,
                p.hits,
                p.misses,
                p.invalidations,
            )
        })
        .collect();
    let p_rows: Vec<String> = probe
        .iter()
        .map(|p| {
            format!(
                "    {{\"groups\": {}, \"probe_us\": {:.1}, \"scan_us\": {:.1}, \
                 \"speedup\": {:.1}}}",
                p.groups,
                p.probe_us,
                p.scan_us,
                p.speedup(),
            )
        })
        .collect();
    format!(
        "{{\n  \"serving\": [\n{}\n  ],\n  \"probe\": [\n{}\n  ]\n}}\n",
        s_rows.join(",\n"),
        p_rows.join(",\n"),
    )
}

/// Hand-rolled JSON for the S3 concurrent points. Alongside the raw
/// points it records the read-scaling ratio from 1 to 4 reader threads
/// and the host's available parallelism: on a single-core host the
/// scaling ceiling is the hardware, not the store (readers time-slice one
/// core), and the JSON says so explicitly.
fn concurrent_json(points: &[serving::ConcurrentPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"readers\": {}, \"writers\": {}, \"reads\": {}, \"writes\": {}, \
                 \"read_qps\": {:.0}, \"write_qps\": {:.0}, \"write_us\": {:.1}, \
                 \"queue_wait_us\": {:.1}, \"apply_publish_us\": {:.1}, \
                 \"publishes\": {}, \"mean_batch\": {:.2}, \"max_batch\": {}}}",
                p.readers,
                p.writers,
                p.reads,
                p.writes,
                p.read_qps,
                p.write_qps,
                p.write_us,
                p.queue_wait_us,
                p.apply_publish_us,
                p.publishes,
                p.mean_batch,
                p.max_batch,
            )
        })
        .collect();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let one = points
        .iter()
        .find(|p| p.readers == 1 && p.writers == 0)
        .map(|p| p.read_qps)
        .unwrap_or(0.0);
    let four = points
        .iter()
        .find(|p| p.readers == 4 && p.writers == 0)
        .map(|p| p.read_qps)
        .unwrap_or(0.0);
    let scaling = if one > 0.0 { four / one } else { 0.0 };
    let ceiling_note = if hw < 4 {
        format!(
            "host exposes {hw} hardware thread(s); 4 reader threads time-slice \
             {hw} core(s), so ~1.0x aggregate scaling is the hardware ceiling — \
             the store itself adds no reader-side locks (readers pin immutable \
             snapshots)"
        )
    } else {
        format!("host exposes {hw} hardware threads; no hardware ceiling below 4 readers")
    };
    format!(
        "{{\n  \"hardware_threads\": {hw},\n  \"read_scaling_1_to_4\": {scaling:.2},\n  \
         \"scaling_note\": \"{ceiling_note}\",\n  \"concurrent\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    )
}

/// Hand-rolled JSON for the S4 observability-overhead points. The
/// top-level `max_overhead_pct` is what the acceptance gate reads: the
/// observability layer must cost ≤ 5% warm-serving latency.
fn obs_overhead_json(points: &[serving::ObsOverheadPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"label\": \"{}\", \"write_pct\": {}, \"obs_on_us\": {:.2}, \
                 \"obs_off_us\": {:.2}, \"overhead_pct\": {:.2}, \"queries_counted\": {}, \
                 \"exec_stage_samples\": {}}}",
                p.label,
                p.write_pct,
                p.obs_on_us,
                p.obs_off_us,
                p.overhead_pct(),
                p.queries_counted,
                p.stage_samples,
            )
        })
        .collect();
    let max_overhead = points
        .iter()
        .map(|p| p.overhead_pct())
        .fold(f64::NEG_INFINITY, f64::max);
    format!(
        "{{\n  \"max_overhead_pct\": {max_overhead:.2},\n  \
         \"acceptance\": \"max_overhead_pct <= 5.0\",\n  \
         \"method\": \"per-rep alternation of obs-on/obs-off sessions over the warm S1 \
         stream; minimum over reps per configuration (discards scheduling spikes)\",\n  \
         \"obs_overhead\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    )
}

/// Hand-rolled JSON for the S5 row-vs-columnar scale points. The
/// top-level `speedup_at_largest_scale` is what the acceptance gate
/// reads: the vectorized path must be >= 5x the row interpreter at the
/// largest measured scale.
fn scale_json(points: &[serving::ScalePoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"rows\": {}, \"row_us\": {:.1}, \"columnar_us\": {:.1}, \
                 \"speedup\": {:.2}, \"vectorized\": {}}}",
                p.rows,
                p.row_us,
                p.columnar_us,
                p.speedup(),
                p.vectorized,
            )
        })
        .collect();
    let at_largest = points
        .iter()
        .max_by_key(|p| p.rows)
        .map(|p| p.speedup())
        .unwrap_or(0.0);
    format!(
        "{{\n  \"speedup_at_largest_scale\": {at_largest:.2},\n  \
         \"acceptance\": \"speedup_at_largest_scale >= 5.0\",\n  \
         \"method\": \"warm sessions (plan + columnar caches populated), same filtered \
         GROUP BY stream, columnar on vs. off; mean select latency per scale\",\n  \
         \"scale\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    )
}

/// Hand-rolled JSON for the S6 sharded write points. `write_scaling_1_to_4`
/// compares acked write throughput at 4 shards vs. 1 under uniform keys;
/// on a single-core host the shard writer threads time-slice one core, so
/// ~1.0x is the hardware ceiling (same caveat as BENCH_3's read scaling).
/// `max_uniform_publish_balance` is what the acceptance gate reads: with
/// uniform partitioning keys, every multi-shard point's largest per-shard
/// publish count must stay within 20% of the mean.
fn sharded_json(points: &[serving::ShardPoint]) -> String {
    let vec_json = |v: &[u64]| {
        let items: Vec<String> = v.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(", "))
    };
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"skew\": {:.2}, \"writes\": {}, \
                 \"write_qps\": {:.0}, \"write_us\": {:.1}, \"queue_wait_us\": {:.1}, \
                 \"apply_publish_us\": {:.1}, \"publish_balance\": {:.3}, \
                 \"row_balance\": {:.3}, \"per_shard_publishes\": {}, \
                 \"per_shard_rows\": {}}}",
                p.shards,
                p.skew,
                p.writes,
                p.write_qps,
                p.write_us,
                p.queue_wait_us,
                p.apply_publish_us,
                p.publish_balance(),
                p.row_balance(),
                vec_json(&p.per_shard_publishes),
                vec_json(
                    &p.per_shard_rows
                        .iter()
                        .map(|&n| n as u64)
                        .collect::<Vec<_>>()
                ),
            )
        })
        .collect();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let qps_at = |n: usize| {
        points
            .iter()
            .find(|p| p.shards == n && p.skew == 0.0)
            .map(|p| p.write_qps)
            .unwrap_or(0.0)
    };
    let (one, four) = (qps_at(1), qps_at(4));
    let scaling = if one > 0.0 { four / one } else { 0.0 };
    let balance = points
        .iter()
        .filter(|p| p.skew == 0.0 && p.shards > 1)
        .map(|p| p.publish_balance())
        .fold(0.0f64, f64::max);
    let ceiling_note = if hw < 4 {
        format!(
            "host exposes {hw} hardware thread(s); 4 shard writer threads time-slice \
             {hw} core(s), so no write *parallelism* is measurable here — scaling above \
             1.0x on this host comes from smaller per-shard partitions (view maintenance \
             and snapshot publish cost scale with partition size), not concurrency. The \
             shards share no locks, queues, or snapshot cells, so added cores turn \
             directly into additional write parallelism on top of that"
        )
    } else {
        format!("host exposes {hw} hardware threads; no hardware ceiling below 4 shards")
    };
    format!(
        "{{\n  \"hardware_threads\": {hw},\n  \"write_scaling_1_to_4\": {scaling:.2},\n  \
         \"scaling_note\": \"{ceiling_note}\",\n  \
         \"max_uniform_publish_balance\": {balance:.3},\n  \
         \"acceptance\": \"max_uniform_publish_balance <= 1.2\",\n  \
         \"sharded\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let mut rows_override: Option<usize> = None;
    let mut skew = 1.5f64;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rows" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => rows_override = Some(n),
                _ => {
                    eprintln!("error: --rows needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--skew" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x >= 0.0 => skew = x,
                _ => {
                    eprintln!("error: --skew needs a non-negative number");
                    std::process::exit(2);
                }
            },
            "--full" | "--json" => {}
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                std::process::exit(2);
            }
            name => selected.push(name),
        }
    }
    let selected = selected;
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    if json && (want("f3") || want("f4")) {
        let f3 = exp::f3_points();
        let f4 = exp::f4_points();
        let doc = format!(
            "{{\n  \"f3_many_views\": {},\n  \"f4_query_size\": {}\n}}\n",
            points_json(&f3, "views"),
            points_json(&f4, "tables"),
        );
        let path = "BENCH_1.json";
        std::fs::write(path, &doc).expect("write BENCH_1.json");
        println!("wrote {path}");
    }
    if json && (want("s1") || want("s2")) {
        let doc = serving_json(
            &serving::serving_points(full),
            &serving::probe_points(full, rows_override),
        );
        let path = "BENCH_2.json";
        std::fs::write(path, &doc).expect("write BENCH_2.json");
        println!("wrote {path}");
    }
    if json && want("s3") {
        let doc = concurrent_json(&serving::concurrent_points(full));
        let path = "BENCH_3.json";
        std::fs::write(path, &doc).expect("write BENCH_3.json");
        println!("wrote {path}");
    }
    if json && want("s4") {
        let doc = obs_overhead_json(&serving::obs_overhead_points(full));
        let path = "BENCH_4.json";
        std::fs::write(path, &doc).expect("write BENCH_4.json");
        println!("wrote {path}");
    }
    if json && want("s5") {
        let doc = scale_json(&serving::scale_points(full, rows_override));
        let path = "BENCH_5.json";
        std::fs::write(path, &doc).expect("write BENCH_5.json");
        println!("wrote {path}");
    }
    if json && want("s6") {
        let doc = sharded_json(&serving::sharded_points(full, skew));
        let path = "BENCH_6.json";
        std::fs::write(path, &doc).expect("write BENCH_6.json");
        println!("wrote {path}");
    }

    let trials: u64 = if full { 400 } else { 100 };
    let mut tables: Vec<Table> = Vec::new();

    if want("t1") {
        tables.push(exp::t1_paper_examples());
    }
    if want("t2") {
        tables.push(exp::t2_soundness(trials));
    }
    if want("t3") {
        tables.push(exp::t3_church_rosser(trials));
    }
    if want("t4") {
        tables.push(exp::t4_completeness(trials));
    }
    if want("t5") {
        tables.push(exp::t5_closure_vs_syntactic());
    }
    if want("t6") {
        tables.push(exp::t6_keys_ablation());
    }
    if want("t7") {
        tables.push(exp::t7_having_ablation());
    }
    if want("t8") {
        tables.push(exp::t8_expand());
    }
    if want("t9") {
        tables.push(exp::t9_advisor());
    }
    if want("f1") {
        tables.push(exp::f1_speedup(full));
    }
    if want("f2") {
        tables.push(exp::f2_compression(full));
    }
    if want("f3") {
        tables.push(exp::f3_many_views());
    }
    if want("f4") {
        tables.push(exp::f4_query_size());
    }
    if want("f6") {
        tables.push(exp::f6_maintenance(full));
    }
    if want("s1") {
        tables.push(serving::s1_serving(full));
    }
    if want("s2") {
        tables.push(serving::s2_probe(full, rows_override));
    }
    if want("s3") {
        tables.push(serving::s3_concurrent(full));
    }
    if want("s4") {
        tables.push(serving::s4_obs_overhead(full));
    }
    if want("s5") {
        tables.push(serving::s5_scale(full, rows_override));
    }
    if want("s6") {
        tables.push(serving::s6_sharded(full, skew));
    }

    for t in &tables {
        println!("{}", t.render());
    }
    println!(
        "{} experiment table(s) regenerated{}.",
        tables.len(),
        if full {
            " (full scale)"
        } else {
            " (quick scale; pass --full for the paper-scale sweep)"
        }
    );
}
