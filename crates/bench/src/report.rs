//! Minimal fixed-width table rendering for the `repro` binary.

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "T1 — paper examples").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_table() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.push(vec!["xx".into(), "1".into()]);
        t.push(vec!["y".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a   long_header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}
