//! Functional dependencies and attribute-set closure.
//!
//! Attributes are identified by `usize` indexes into some column space (a
//! single table's columns, or the concatenated column space of a query's
//! core table). A functional dependency `X → Y` is stored as two index
//! vectors. The closure algorithm is the standard linear fixpoint.

use std::collections::BTreeSet;

/// A functional dependency `lhs → rhs` over attribute indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Determinant attribute set. Empty means "always" (constant columns).
    pub lhs: Vec<usize>,
    /// Determined attribute set.
    pub rhs: Vec<usize>,
}

impl Fd {
    /// Create a functional dependency.
    pub fn new(lhs: impl Into<Vec<usize>>, rhs: impl Into<Vec<usize>>) -> Self {
        Fd {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// Shift every attribute index by `offset` — used when embedding a
    /// table's FDs into the concatenated column space of a core table.
    pub fn offset(&self, offset: usize) -> Fd {
        Fd {
            lhs: self.lhs.iter().map(|&a| a + offset).collect(),
            rhs: self.rhs.iter().map(|&a| a + offset).collect(),
        }
    }
}

/// Compute the closure of `start` under `fds` within an `n`-attribute space.
///
/// Returns a boolean membership vector of length `n`. Runs the textbook
/// fixpoint: repeatedly fire any FD whose left side is covered. Complexity
/// is O(|fds|² · width) which is ample for query-sized inputs.
pub fn attr_closure(n: usize, fds: &[Fd], start: &[usize]) -> Vec<bool> {
    let mut in_closure = vec![false; n];
    for &a in start {
        assert!(a < n, "attribute index {a} out of range {n}");
        in_closure[a] = true;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.iter().all(|&a| in_closure[a]) {
                for &b in &fd.rhs {
                    if !in_closure[b] {
                        in_closure[b] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    in_closure
}

/// Does `attrs` functionally determine every attribute (i.e., is it a
/// superkey of the `n`-attribute relation described by `fds`)?
pub fn is_superkey(n: usize, fds: &[Fd], attrs: &[usize]) -> bool {
    attr_closure(n, fds, attrs).iter().all(|&b| b)
}

/// Enumerate the minimal keys of an `n`-attribute relation under `fds`.
///
/// Exponential in the worst case (as the problem demands); intended for the
/// small attribute counts of single-block queries. Returns keys as sorted
/// attribute vectors, smallest keys first.
pub fn minimal_keys(n: usize, fds: &[Fd]) -> Vec<Vec<usize>> {
    assert!(n <= 24, "minimal key enumeration limited to 24 attributes");
    let mut keys: Vec<BTreeSet<usize>> = Vec::new();
    // Breadth-first over subset sizes so supersets of found keys are skipped.
    for size in 0..=n {
        for combo in combinations(n, size) {
            let set: BTreeSet<usize> = combo.iter().copied().collect();
            if keys.iter().any(|k| k.is_subset(&set)) {
                continue;
            }
            if is_superkey(n, fds, &combo) {
                keys.push(set);
            }
        }
    }
    keys.into_iter().map(|k| k.into_iter().collect()).collect()
}

fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, start: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            if n - i < k - current.len() {
                break;
            }
            current.push(i);
            rec(n, k, i + 1, current, out);
            current.pop();
        }
    }
    rec(n, k, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_of_key_is_everything() {
        // R(A,B,C): A -> B, B -> C.
        let fds = vec![Fd::new(vec![0], vec![1]), Fd::new(vec![1], vec![2])];
        let c = attr_closure(3, &fds, &[0]);
        assert_eq!(c, vec![true, true, true]);
        assert!(is_superkey(3, &fds, &[0]));
        assert!(!is_superkey(3, &fds, &[1]));
    }

    #[test]
    fn closure_is_reflexive() {
        let c = attr_closure(3, &[], &[1]);
        assert_eq!(c, vec![false, true, false]);
    }

    #[test]
    fn empty_lhs_fd_fires_unconditionally() {
        // A constant column: {} -> {2}.
        let fds = vec![Fd::new(Vec::<usize>::new(), vec![2])];
        let c = attr_closure(3, &fds, &[]);
        assert_eq!(c, vec![false, false, true]);
    }

    #[test]
    fn offset_shifts_both_sides() {
        let fd = Fd::new(vec![0], vec![1, 2]);
        assert_eq!(fd.offset(10), Fd::new(vec![10], vec![11, 12]));
    }

    #[test]
    fn transitive_key_inference() {
        // Paper Section 5.1: "if column A functionally determines column B,
        // and B is a key, then so is A." R(A,B,C): B -> {A,C} (B is a key),
        // A -> B. Then A is also a key.
        let fds = vec![Fd::new(vec![1], vec![0, 2]), Fd::new(vec![0], vec![1])];
        assert!(is_superkey(3, &fds, &[0]));
        assert!(is_superkey(3, &fds, &[1]));
        assert!(!is_superkey(3, &fds, &[2]));
    }

    #[test]
    fn minimal_keys_of_chain() {
        // A -> B -> C: sole minimal key is {A}.
        let fds = vec![Fd::new(vec![0], vec![1]), Fd::new(vec![1], vec![2])];
        assert_eq!(minimal_keys(3, &fds), vec![vec![0]]);
    }

    #[test]
    fn minimal_keys_of_two_key_relation() {
        // A -> {B,C}, B -> {A,C}: keys {A} and {B}.
        let fds = vec![Fd::new(vec![0], vec![1, 2]), Fd::new(vec![1], vec![0, 2])];
        assert_eq!(minimal_keys(3, &fds), vec![vec![0], vec![1]]);
    }

    #[test]
    fn minimal_keys_trivial_when_no_fds() {
        // With no FDs, only the full attribute set determines everything
        // (closure is reflexive). Whether the relation is duplicate-free is
        // a separate question tracked by `TableSchema::is_set`.
        assert_eq!(minimal_keys(3, &[]), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn minimal_keys_composite() {
        // {A,B} -> C and nothing else: the only key is {A,B}.
        let fds = vec![Fd::new(vec![0, 1], vec![2])];
        assert_eq!(minimal_keys(3, &fds), vec![vec![0, 1]]);
    }

    #[test]
    fn closure_is_monotone_and_idempotent() {
        let fds = vec![Fd::new(vec![0], vec![1]), Fd::new(vec![1, 2], vec![3])];
        let small = attr_closure(4, &fds, &[0]);
        let big = attr_closure(4, &fds, &[0, 2]);
        // Monotone: closure of a superset contains the closure of the set.
        for i in 0..4 {
            if small[i] {
                assert!(big[i]);
            }
        }
        // Idempotent: closing the closure adds nothing.
        let fixed: Vec<usize> = (0..4).filter(|&i| big[i]).collect();
        assert_eq!(attr_closure(4, &fds, &fixed), big);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }
}
