//! Schema catalog for the `aggview` project.
//!
//! Holds what Section 2 of the paper calls *meta-information about the
//! database schema*: table definitions, keys and functional dependencies.
//! The rewriting conditions of Sections 3 and 4 do **not** require any of
//! this (the paper explicitly avoids assuming it); Section 5 shows how keys
//! and functional dependencies let the rewriter (a) conclude that query and
//! view results are *sets* rather than multisets and (b) relax the 1-1
//! column-mapping condition C1 to many-to-1 mappings.
//!
//! Modules:
//! * [`schema`] — [`Catalog`], [`TableSchema`], column types and keys.
//! * [`fd`] — functional dependencies and attribute-set closure.
//! * [`setness`] — Propositions 5.1 and 5.2: when is a query's *core table*
//!   (the FROM×WHERE intermediate) a set, and when is the query result one.

pub mod fd;
pub mod schema;
pub mod setness;

pub use fd::{attr_closure, is_superkey, minimal_keys, Fd};
pub use schema::{Catalog, CatalogError, ColumnDef, ColumnType, SchemaSource, TableSchema};
pub use setness::CoreDesc;
