//! Set-ness inference — Propositions 5.1 and 5.2 of the paper.
//!
//! The paper divides query evaluation into two phases: the `FROM` and
//! `WHERE` clauses build a single intermediate *core table*; `SELECT`,
//! `GROUP BY` and `HAVING` then apply to it. With that view:
//!
//! * **Proposition 5.2** — the core table is a set iff every table in the
//!   `FROM` clause is a set.
//! * **Proposition 5.1** — the result of a conjunctive query is a set iff
//!   the core table is a set *and* the `SELECT` list retains a key of the
//!   core table.
//!
//! Keys of the core table are derived by functional-dependency reasoning:
//! each `FROM` occurrence contributes its table's FDs (shifted into the
//! concatenated column space), each equality `A = B` in the `WHERE` clause
//! contributes `A → B` and `B → A`, and each constant equality `A = c`
//! contributes `∅ → A`. The paper's foreign-key-join observation ("the key
//! of the leading table suffices") falls out of this reasoning for free.

use crate::fd::{attr_closure, is_superkey, minimal_keys, Fd};

/// Description of a query's core table for set-ness reasoning.
///
/// Built by the canonicalizer in `aggview-core`: it knows which catalog
/// tables occur in the `FROM` clause and which equalities the `WHERE`
/// clause enforces; this type performs the FD reasoning.
#[derive(Debug, Clone, Default)]
pub struct CoreDesc {
    n_cols: usize,
    fds: Vec<Fd>,
    all_from_sets: bool,
    any_table: bool,
}

impl CoreDesc {
    /// Start an empty description.
    pub fn new() -> Self {
        CoreDesc {
            n_cols: 0,
            fds: Vec::new(),
            all_from_sets: true,
            any_table: false,
        }
    }

    /// Append a `FROM` occurrence with `arity` columns whose table-level
    /// FDs are `fds` (in table-local indexes) and which is (not) known to
    /// be a set. Returns the column offset assigned to the occurrence.
    pub fn push_occurrence(&mut self, arity: usize, fds: &[Fd], is_set: bool) -> usize {
        let offset = self.n_cols;
        self.n_cols += arity;
        self.fds.extend(fds.iter().map(|fd| fd.offset(offset)));
        self.all_from_sets &= is_set;
        self.any_table = true;
        offset
    }

    /// Record an equality `col_a = col_b` from the `WHERE` clause
    /// (indexes in the concatenated column space).
    pub fn add_equality(&mut self, a: usize, b: usize) {
        assert!(a < self.n_cols && b < self.n_cols);
        self.fds.push(Fd::new(vec![a], vec![b]));
        self.fds.push(Fd::new(vec![b], vec![a]));
    }

    /// Record a constant binding `col = c` from the `WHERE` clause.
    pub fn add_constant(&mut self, col: usize) {
        assert!(col < self.n_cols);
        self.fds.push(Fd::new(Vec::new(), vec![col]));
    }

    /// Total number of columns in the core table.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Proposition 5.2: the core table is a set iff every `FROM` table is.
    pub fn core_is_set(&self) -> bool {
        self.any_table && self.all_from_sets
    }

    /// Does `attrs` functionally determine the whole core table?
    pub fn is_superkey(&self, attrs: &[usize]) -> bool {
        is_superkey(self.n_cols, &self.fds, attrs)
    }

    /// The attribute closure of `attrs` under the core table's FDs.
    pub fn closure(&self, attrs: &[usize]) -> Vec<bool> {
        attr_closure(self.n_cols, &self.fds, attrs)
    }

    /// Proposition 5.1: the result of a conjunctive query that projects
    /// `selected` is a set iff the core is a set and `selected` is a
    /// superkey of the core.
    pub fn conjunctive_result_is_set(&self, selected: &[usize]) -> bool {
        self.core_is_set() && self.is_superkey(selected)
    }

    /// Set-ness of a grouped query's result: the output has one row per
    /// group (distinct on `groups`), so it is duplicate-free whenever the
    /// retained grouping columns determine all grouping columns — i.e.,
    /// `col_sel` (the non-aggregate output columns) functionally determine
    /// `groups` under the core FDs. This is conservative but sound; it does
    /// not depend on the core being a set.
    pub fn grouped_result_is_set(&self, col_sel: &[usize], groups: &[usize]) -> bool {
        let cl = self.closure(col_sel);
        groups.iter().all(|&g| cl[g])
    }

    /// Minimal keys of the core table (for diagnostics and tests).
    pub fn minimal_keys(&self) -> Vec<Vec<usize>> {
        minimal_keys(self.n_cols, &self.fds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    /// R1(A,B,C) keyed on A, R2(D,E) keyed on D, joined on B = D.
    fn two_table_core() -> CoreDesc {
        let r1 = TableSchema::new("R1", ["A", "B", "C"]).with_key(["A"]);
        let r2 = TableSchema::new("R2", ["D", "E"]).with_key(["D"]);
        let mut core = CoreDesc::new();
        let o1 = core.push_occurrence(r1.arity(), &r1.all_fds(), r1.is_set());
        let o2 = core.push_occurrence(r2.arity(), &r2.all_fds(), r2.is_set());
        // B = D (foreign-key style join).
        core.add_equality(o1 + 1, o2);
        core
    }

    #[test]
    fn foreign_key_join_key_is_leading_table_key() {
        // Paper Section 5.1: in a foreign-key join the key of the leading
        // table suffices as a key for the join result.
        let core = two_table_core();
        assert!(core.core_is_set());
        // {A} determines B (A is key of R1), B = D, D is key of R2 → all.
        assert!(core.is_superkey(&[0]));
        assert_eq!(core.minimal_keys(), vec![vec![0]]);
    }

    #[test]
    fn cartesian_product_needs_both_keys() {
        let r1 = TableSchema::new("R1", ["A", "B"]).with_key(["A"]);
        let r2 = TableSchema::new("R2", ["C", "D"]).with_key(["C"]);
        let mut core = CoreDesc::new();
        core.push_occurrence(r1.arity(), &r1.all_fds(), r1.is_set());
        core.push_occurrence(r2.arity(), &r2.all_fds(), r2.is_set());
        assert!(!core.is_superkey(&[0]));
        assert!(!core.is_superkey(&[2]));
        assert!(core.is_superkey(&[0, 2]));
        assert_eq!(core.minimal_keys(), vec![vec![0, 2]]);
    }

    #[test]
    fn multiset_table_poisons_core() {
        // Prop 5.2: one multiset table in FROM makes the core a multiset.
        let r1 = TableSchema::new("R1", ["A"]).with_key(["A"]);
        let bag = TableSchema::new("Bag", ["X"]);
        let mut core = CoreDesc::new();
        core.push_occurrence(r1.arity(), &r1.all_fds(), r1.is_set());
        core.push_occurrence(bag.arity(), &bag.all_fds(), bag.is_set());
        assert!(!core.core_is_set());
        assert!(!core.conjunctive_result_is_set(&[0, 1]));
    }

    #[test]
    fn empty_core_is_not_a_set() {
        // Degenerate: no FROM tables — callers never build this, but the
        // answer must be conservative.
        assert!(!CoreDesc::new().core_is_set());
    }

    #[test]
    fn constant_binding_shrinks_keys() {
        // R(A,B) keyed on {A,B}; WHERE B = 3 makes {A} a key.
        let r = TableSchema::new("R", ["A", "B"]).with_key(["A", "B"]);
        let mut core = CoreDesc::new();
        core.push_occurrence(r.arity(), &r.all_fds(), r.is_set());
        core.add_constant(1);
        assert!(core.is_superkey(&[0]));
    }

    #[test]
    fn prop_5_1_requires_key_in_select() {
        let core = two_table_core();
        // Projecting only C (index 2) is not a superkey → result may have
        // duplicates.
        assert!(!core.conjunctive_result_is_set(&[2]));
        // Projecting A is.
        assert!(core.conjunctive_result_is_set(&[0]));
    }

    #[test]
    fn grouped_result_setness() {
        let core = two_table_core();
        // GROUP BY A, B with ColSel = {A}: A determines B (key of R1), so
        // one output row per A → set.
        assert!(core.grouped_result_is_set(&[0], &[0, 1]));
        // GROUP BY A, E with ColSel = {E}: E does not determine A → may
        // emit duplicate E rows.
        assert!(!core.grouped_result_is_set(&[4], &[0, 4]));
    }

    #[test]
    fn equality_is_symmetric() {
        let r = TableSchema::new("R", ["A", "B"]).with_key(["A"]);
        let s = TableSchema::new("S", ["C"]).with_key(["C"]);
        let mut core = CoreDesc::new();
        core.push_occurrence(r.arity(), &r.all_fds(), r.is_set());
        core.push_occurrence(s.arity(), &s.all_fds(), s.is_set());
        core.add_equality(2, 0); // C = A, written backwards
        assert!(core.is_superkey(&[2]));
        assert!(core.is_superkey(&[0]));
    }
}
