//! Table schemas and the catalog.

use crate::fd::Fd;
use std::collections::BTreeMap;
use std::fmt;

/// Column value domain. Used by the data generators and for diagnostics;
/// the execution engine is dynamically typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnType {
    /// 64-bit integer.
    #[default]
    Int,
    /// Double-precision float.
    Double,
    /// String.
    Str,
    /// Boolean.
    Bool,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Value domain.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// An integer column.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnDef {
            name: name.into(),
            ty: ColumnType::Int,
        }
    }

    /// A column with an explicit type.
    pub fn typed(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of a base table: columns, declared keys, extra functional
/// dependencies, and whether the table is known to be duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<ColumnDef>,
    /// Declared keys, as sorted column-index vectors.
    pub keys: Vec<Vec<usize>>,
    /// Extra functional dependencies beyond the keys.
    pub extra_fds: Vec<Fd>,
    /// Declared set (duplicate-free) even without a key — e.g. the result of
    /// a `SELECT DISTINCT` materialization.
    pub declared_set: bool,
}

impl TableSchema {
    /// Create a schema with integer-typed columns and no keys.
    pub fn new<I, S>(name: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableSchema {
            name: name.into(),
            columns: columns.into_iter().map(|c| ColumnDef::new(c)).collect(),
            keys: Vec::new(),
            extra_fds: Vec::new(),
            declared_set: false,
        }
    }

    /// Create a schema with typed columns.
    pub fn with_columns(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            keys: Vec::new(),
            extra_fds: Vec::new(),
            declared_set: false,
        }
    }

    /// Declare a key by column names (builder style).
    ///
    /// # Panics
    /// Panics if a named column does not exist.
    pub fn with_key<I, S>(mut self, key: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut idx: Vec<usize> = key
            .into_iter()
            .map(|name| {
                self.column_index(name.as_ref())
                    .unwrap_or_else(|| panic!("no column `{}` in `{}`", name.as_ref(), self.name))
            })
            .collect();
        idx.sort_unstable();
        idx.dedup();
        self.keys.push(idx);
        self
    }

    /// Declare an extra functional dependency by column names.
    ///
    /// # Panics
    /// Panics if a named column does not exist.
    pub fn with_fd<I, J, S, T>(mut self, lhs: I, rhs: J) -> Self
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: AsRef<str>,
        T: AsRef<str>,
    {
        let resolve = |name: &str| -> usize {
            self.column_index(name)
                .unwrap_or_else(|| panic!("no column `{name}` in `{}`", self.name))
        };
        let l: Vec<usize> = lhs.into_iter().map(|c| resolve(c.as_ref())).collect();
        let r: Vec<usize> = rhs.into_iter().map(|c| resolve(c.as_ref())).collect();
        self.extra_fds.push(Fd::new(l, r));
        self
    }

    /// Mark the table as duplicate-free even without a declared key.
    pub fn as_set(mut self) -> Self {
        self.declared_set = true;
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Is this table guaranteed to be a set (duplicate-free)?
    pub fn is_set(&self) -> bool {
        self.declared_set || !self.keys.is_empty()
    }

    /// All functional dependencies that hold on this table: each key
    /// determines every column, plus the extra FDs.
    pub fn all_fds(&self) -> Vec<Fd> {
        let every: Vec<usize> = (0..self.arity()).collect();
        let mut fds: Vec<Fd> = self
            .keys
            .iter()
            .map(|k| Fd::new(k.clone(), every.clone()))
            .collect();
        fds.extend(self.extra_fds.iter().cloned());
        fds
    }
}

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Two columns in one table share a name.
    DuplicateColumn {
        /// The table being defined.
        table: String,
        /// The repeated column name.
        column: String,
    },
    /// A table definition with no columns.
    EmptyTable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(t) => write!(f, "table `{t}` already defined"),
            CatalogError::DuplicateColumn { table, column } => {
                write!(f, "column `{column}` defined twice in table `{table}`")
            }
            CatalogError::EmptyTable(t) => write!(f, "table `{t}` has no columns"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The catalog: a named collection of table schemas.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a table schema, validating name and column uniqueness.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<&mut Self, CatalogError> {
        if schema.columns.is_empty() {
            return Err(CatalogError::EmptyTable(schema.name.clone()));
        }
        for (i, c) in schema.columns.iter().enumerate() {
            if schema.columns[..i].iter().any(|d| d.name == c.name) {
                return Err(CatalogError::DuplicateColumn {
                    table: schema.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        if self.tables.contains_key(&schema.name) {
            return Err(CatalogError::DuplicateTable(schema.name));
        }
        self.tables.insert(schema.name.clone(), schema);
        Ok(self)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Anything that can answer "what are the columns of table `name`?" —
/// implemented by [`Catalog`] and by the engine's `Database` so the
/// canonicalizer can resolve queries against either.
pub trait SchemaSource {
    /// Column names of the named table/view, or `None` if unknown.
    fn table_columns(&self, name: &str) -> Option<Vec<String>>;
}

impl SchemaSource for Catalog {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.table(name).map(|t| t.column_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> TableSchema {
        TableSchema::new(
            "Customer",
            ["Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"],
        )
        .with_key(["Cust_Id"])
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = Catalog::new();
        cat.add_table(customer()).unwrap();
        let t = cat.table("Customer").unwrap();
        assert_eq!(t.arity(), 4);
        assert_eq!(t.column_index("Area_Code"), Some(2));
        assert!(t.is_set());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(customer()).unwrap();
        assert_eq!(
            cat.add_table(customer()).unwrap_err(),
            CatalogError::DuplicateTable("Customer".into())
        );
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .add_table(TableSchema::new("T", ["a", "b", "a"]))
            .unwrap_err();
        assert_eq!(
            err,
            CatalogError::DuplicateColumn {
                table: "T".into(),
                column: "a".into()
            }
        );
    }

    #[test]
    fn empty_table_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .add_table(TableSchema::new("T", Vec::<String>::new()))
            .unwrap_err();
        assert_eq!(err, CatalogError::EmptyTable("T".into()));
    }

    #[test]
    fn keyless_table_is_multiset_unless_declared() {
        let t = TableSchema::new("T", ["a"]);
        assert!(!t.is_set());
        assert!(TableSchema::new("T", ["a"]).as_set().is_set());
    }

    #[test]
    fn all_fds_include_keys_and_extras() {
        let t = TableSchema::new("T", ["a", "b", "c"])
            .with_key(["a"])
            .with_fd(["b"], ["c"]);
        let fds = t.all_fds();
        assert_eq!(fds.len(), 2);
        assert_eq!(fds[0], Fd::new(vec![0], vec![0, 1, 2]));
        assert_eq!(fds[1], Fd::new(vec![1], vec![2]));
    }

    #[test]
    fn schema_source_returns_columns() {
        let mut cat = Catalog::new();
        cat.add_table(customer()).unwrap();
        assert_eq!(
            cat.table_columns("Customer").unwrap(),
            vec!["Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"]
        );
        assert!(cat.table_columns("Nope").is_none());
    }

    #[test]
    #[should_panic(expected = "no column `zz`")]
    fn with_key_panics_on_unknown_column() {
        let _ = TableSchema::new("T", ["a"]).with_key(["zz"]);
    }
}
