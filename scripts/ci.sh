#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, formatting, clippy
# clean, a quick serving-bench smoke (the S1/S2 harness must run and
# produce a warm-path speedup > 1), a differential smoke (a short
# qcheck seed sweep plus the persisted corpus, failing on any
# regression), a concurrency smoke (the shared-store stress test
# under --release plus a short multi-session qcheck sweep), and a
# columnar smoke (the S5 row-vs-columnar harness runs, and the same
# script answers byte-identically with and without --no-columnar), and
# a sharding smoke (the S6 sharded-write harness runs, every corpus
# script answers identically under --shards 2, and a short sharded
# qcheck sweep passes).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the repro/qcheck binaries used below are rebuilt (a
# bare `cargo build` only covers the root package in this workspace).
cargo build --release --workspace
cargo test -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
# Capture first, then grep: `grep -q` in a pipeline would close the pipe
# early and kill repro with SIGPIPE under `pipefail`.
smoke=$(./target/release/repro s1 s2)
printf '%s\n' "$smoke" >&2
grep -q "S1 — end-to-end serving latency" <<<"$smoke"
grep -q "S2 — view point lookups" <<<"$smoke"
# Columnar smoke: the S5 scan/aggregate harness at a small scale (the
# full 1k→100k sweep lives in scripts/bench_snapshot.sh), plus a
# row-vs-columnar byte-identity check — the same script through the
# default (vectorized) session and through --no-columnar must print
# exactly the same bytes once wall-clock duration tokens are masked
# (the `N.NN ms)` evaluation timings vary run to run by design — the
# mask is anchored on the closing paren because the token sits at the
# end of a larger parenthetical, not alone in one).
smoke5=$(./target/release/repro --rows 2000 s5)
printf '%s\n' "$smoke5" >&2
grep -q "S5 — scan/aggregate latency" <<<"$smoke5"
columnar_script='CREATE TABLE Sales (Region, Product, Amount);
INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3), (2, 11, 9), (1, 10, 2);
CREATE VIEW Totals AS SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount), COUNT(Amount) FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales WHERE Amount < 5 GROUP BY Region;
SELECT Product, MIN(Amount), MAX(Amount), AVG(Amount) FROM Sales GROUP BY Product;
SELECT Region, T, N FROM Totals;'
col_out=$(./target/release/aggview <<<"$columnar_script" | sed -E 's/[0-9.]+ ms\)/_ ms)/g')
row_out=$(./target/release/aggview --no-columnar <<<"$columnar_script" | sed -E 's/[0-9.]+ ms\)/_ ms)/g')
if [ "$col_out" != "$row_out" ]; then
  echo "ci: columnar and --no-columnar outputs diverge" >&2
  diff <(printf '%s\n' "$col_out") <(printf '%s\n' "$row_out") >&2 || true
  exit 1
fi
# Differential smoke: seconds, not minutes — the deep sweep lives in
# scripts/soak.sh. A corpus regression (a once-interesting case going
# wrong again) fails the gate.
./target/release/qcheck --seeds 0..500
./target/release/qcheck --replay tests/corpus
# Concurrency smoke: the 4-reader/1-writer stress test runs under
# --release (debug-mode timing starves the readers), and a short
# multi-session sweep replays the differential stream round-robined
# across 2 handles of one shared store.
cargo test -q --release --test concurrent_store
./target/release/qcheck --seeds 0..200 --sessions 2
# Metrics smoke: run a script through `aggview metrics` and `serve
# --metrics`, assert the pipeline counters landed, and validate every
# exposed line against the Prometheus text format (comments are TYPE
# declarations; samples are `name value` with a bare integer value).
metrics_script='CREATE TABLE Sales (Region, Product, Amount);
INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3);
CREATE VIEW Totals AS SELECT Region, SUM(Amount) AS T, COUNT(Amount) AS N FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;'
scrape=$(./target/release/aggview metrics <<<"$metrics_script")
grep -q '^aggview_statements_total 5$' <<<"$scrape"
grep -q '^aggview_queries_total 2$' <<<"$scrape"
grep -q '^aggview_plan_cache_hits_total 1$' <<<"$scrape"
grep -q 'aggview_stage_duration_nanoseconds_bucket{stage="execute",le="+Inf"} 2' <<<"$scrape"
bad=$(grep -Ev '^(# TYPE aggview_[a-z_]+ (counter|gauge|histogram)|aggview_[a-z_]+(\{[^}]*\})? [0-9]+)$' <<<"$scrape" || true)
if [ -n "$bad" ]; then
  echo "ci: invalid Prometheus exposition line(s):" >&2
  printf '%s\n' "$bad" >&2
  exit 1
fi
serve_scrape=$(./target/release/aggview serve --sessions 2 --metrics <<<"$metrics_script")
grep -q '^aggview_store_publishes_total 3$' <<<"$serve_scrape"
grep -q '^aggview_write_queue_depth 0$' <<<"$serve_scrape"
# Sharding smoke: the S6 scatter-gather write harness runs end to end,
# then every corpus script must answer identically through a 2-shard
# store and an unsharded session. Wall-clock tokens and maintenance
# counts are masked (each shard maintains only its own partition's
# views, so the summed count can legitimately differ), and lines are
# sorted (a gathered relation is a shard-order permutation of the
# unsharded row order — bag equality is the contract, and qcheck's
# repeated-select check pins per-plan determinism separately). A short
# sharded qcheck sweep closes the gate.
smoke6=$(./target/release/repro s6)
printf '%s\n' "$smoke6" >&2
grep -q "S6 — sharded write throughput" <<<"$smoke6"
shard_mask='s/[0-9.]+ ms\)/_ ms)/g; s/[0-9]+ view\(s\) maintained/_ view(s) maintained/g'
for f in tests/corpus/*.sql; do
  un=$(./target/release/aggview "$f" | sed -E "$shard_mask" | sort)
  sh=$(./target/release/aggview --shards 2 "$f" | sed -E "$shard_mask" | sort)
  if [ "$un" != "$sh" ]; then
    echo "ci: sharded and unsharded outputs diverge on $f" >&2
    diff <(printf '%s\n' "$un") <(printf '%s\n' "$sh") >&2 || true
    exit 1
  fi
done
./target/release/qcheck --seeds 0..200 --shards 2
echo "ci: all checks passed"
