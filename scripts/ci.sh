#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, and clippy clean.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "ci: all checks passed"
