#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, formatting, clippy
# clean, a quick serving-bench smoke (the S1/S2 harness must run and
# produce a warm-path speedup > 1), a differential smoke (a short
# qcheck seed sweep plus the persisted corpus, failing on any
# regression), and a concurrency smoke (the shared-store stress test
# under --release plus a short multi-session qcheck sweep).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the repro/qcheck binaries used below are rebuilt (a
# bare `cargo build` only covers the root package in this workspace).
cargo build --release --workspace
cargo test -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
# Capture first, then grep: `grep -q` in a pipeline would close the pipe
# early and kill repro with SIGPIPE under `pipefail`.
smoke=$(./target/release/repro s1 s2)
printf '%s\n' "$smoke" >&2
grep -q "S1 — end-to-end serving latency" <<<"$smoke"
grep -q "S2 — view point lookups" <<<"$smoke"
# Differential smoke: seconds, not minutes — the deep sweep lives in
# scripts/soak.sh. A corpus regression (a once-interesting case going
# wrong again) fails the gate.
./target/release/qcheck --seeds 0..500
./target/release/qcheck --replay tests/corpus
# Concurrency smoke: the 4-reader/1-writer stress test runs under
# --release (debug-mode timing starves the readers), and a short
# multi-session sweep replays the differential stream round-robined
# across 2 handles of one shared store.
cargo test -q --release --test concurrent_store
./target/release/qcheck --seeds 0..200 --sessions 2
echo "ci: all checks passed"
