#!/usr/bin/env bash
# Regenerate BENCH_1.json: the F3 (view-pool size) and F4 (query size)
# rewrite-search sweeps, sequential baseline vs. parallel+indexed, with
# the RewriteStats counters of the instrumented run.
#
# Usage: scripts/bench_snapshot.sh
# Writes: BENCH_1.json (repo root) and prints the rendered tables.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p aggview-bench
./target/release/repro --json f3 f4
echo
echo "BENCH_1.json:"
cat BENCH_1.json
