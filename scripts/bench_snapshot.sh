#!/usr/bin/env bash
# Regenerate the benchmark snapshots:
#   BENCH_1.json — the F3 (view-pool size) and F4 (query size)
#     rewrite-search sweeps, sequential baseline vs. parallel+indexed,
#     with the RewriteStats counters of the instrumented run.
#   BENCH_2.json — the serving-path figures: S1 cold-vs-warm end-to-end
#     latency/QPS under write mixes, S2 grouped-index probe vs. scan.
#   BENCH_5.json — the S5 scan/aggregate scale sweep (1k → 100k rows),
#     row interpreter vs. columnar kernels, with the acceptance bar
#     (speedup_at_largest_scale >= 5.0) recorded alongside the data.
#
# Usage: scripts/bench_snapshot.sh
# Writes: BENCH_1.json, BENCH_2.json and BENCH_5.json (repo root),
# prints the tables.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p aggview-bench
./target/release/repro --json f3 f4 s1 s2
# S5 runs at --full so the sweep reaches the 100k-row scale the
# acceptance bar is stated against.
./target/release/repro --json --full s5
echo
echo "BENCH_1.json:"
cat BENCH_1.json
echo
echo "BENCH_2.json:"
cat BENCH_2.json
echo
echo "BENCH_5.json:"
cat BENCH_5.json
