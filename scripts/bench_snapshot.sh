#!/usr/bin/env bash
# Regenerate the benchmark snapshots:
#   BENCH_1.json — the F3 (view-pool size) and F4 (query size)
#     rewrite-search sweeps, sequential baseline vs. parallel+indexed,
#     with the RewriteStats counters of the instrumented run.
#   BENCH_2.json — the serving-path figures: S1 cold-vs-warm end-to-end
#     latency/QPS under write mixes, S2 grouped-index probe vs. scan.
#
# Usage: scripts/bench_snapshot.sh
# Writes: BENCH_1.json and BENCH_2.json (repo root), prints the tables.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p aggview-bench
./target/release/repro --json f3 f4 s1 s2
echo
echo "BENCH_1.json:"
cat BENCH_1.json
echo
echo "BENCH_2.json:"
cat BENCH_2.json
