#!/usr/bin/env bash
# Regenerate the benchmark snapshots:
#   BENCH_1.json — the F3 (view-pool size) and F4 (query size)
#     rewrite-search sweeps, sequential baseline vs. parallel+indexed,
#     with the RewriteStats counters of the instrumented run.
#   BENCH_2.json — the serving-path figures: S1 cold-vs-warm end-to-end
#     latency/QPS under write mixes, S2 grouped-index probe vs. scan.
#   BENCH_5.json — the S5 scan/aggregate scale sweep (1k → 100k rows),
#     row interpreter vs. columnar kernels, with the acceptance bar
#     (speedup_at_largest_scale >= 5.0) recorded alongside the data.
#   BENCH_6.json — the S6 sharded write sweep (1/2/4 shards uniform +
#     4 shards skewed), acked write throughput, queue-wait vs.
#     apply+publish split, and per-shard publish/row balance with the
#     acceptance bar (max_uniform_publish_balance <= 1.2).
#
# Usage: scripts/bench_snapshot.sh
# Writes: BENCH_1.json, BENCH_2.json, BENCH_5.json and BENCH_6.json
# (repo root), prints the tables.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p aggview-bench
./target/release/repro --json f3 f4 s1 s2
# S5 runs at --full so the sweep reaches the 100k-row scale the
# acceptance bar is stated against.
./target/release/repro --json --full s5
# S6 runs at --full so each shard point streams long enough for the
# balance figures to settle.
./target/release/repro --json --full s6
echo
echo "BENCH_1.json:"
cat BENCH_1.json
echo
echo "BENCH_2.json:"
cat BENCH_2.json
echo
echo "BENCH_5.json:"
cat BENCH_5.json
echo
echo "BENCH_6.json:"
cat BENCH_6.json
