#!/usr/bin/env bash
# Long-running differential soak: sweep a large seed range through the
# qcheck harness (reference interpreter vs. the full serving stack at
# every engine-configuration lattice point, every emitted rewriting, both
# rewrite thread counts). Shrunken counterexamples are written to
# tests/corpus/ so a find becomes a permanent regression test.
#
# Usage: scripts/soak.sh [N_SEEDS] [START]
#   N_SEEDS  seeds to check (default 5000)
#   START    first seed (default 0) — shift it to sweep fresh territory
set -euo pipefail
cd "$(dirname "$0")/.."

n=${1:-5000}
start=${2:-0}
end=$((start + n))

cargo build --release -p aggview-qcheck
exec ./target/release/qcheck --seeds "$start..$end" --write-failures tests/corpus
