#!/usr/bin/env bash
# Long-running differential soak: sweep a large seed range through the
# qcheck harness (reference interpreter vs. the full serving stack at
# every engine-configuration lattice point, every emitted rewriting, both
# rewrite thread counts). Shrunken counterexamples are written to
# tests/corpus/ so a find becomes a permanent regression test.
#
# With SESSIONS > 1 the same statement streams are additionally replayed
# round-robined across K handles of one shared snapshot store — the
# deterministic multi-session soak (per-handle plan caches invalidated by
# other handles' DDL, snapshot pinning, write batching).
#
# Usage: scripts/soak.sh [N_SEEDS] [START] [SESSIONS]
#   N_SEEDS   seeds to check (default 5000)
#   START     first seed (default 0) — shift it to sweep fresh territory
#   SESSIONS  shared-store handles for a second, interleaved sweep
#             (default 2; set 1 to skip the multi-session pass)
set -euo pipefail
cd "$(dirname "$0")/.."

n=${1:-5000}
start=${2:-0}
sessions=${3:-2}
end=$((start + n))

cargo build --release -p aggview-qcheck
./target/release/qcheck --seeds "$start..$end" --write-failures tests/corpus
if [ "$sessions" -gt 1 ]; then
    ./target/release/qcheck --seeds "$start..$end" --sessions "$sessions" \
        --write-failures tests/corpus
fi
echo "soak: $n seed(s) from $start clean (sessions=$sessions)"
