-- aggview demo script: the paper's Example 1.1 in miniature.
-- Run with: cargo run --bin aggview -- --verify scripts/telephony_demo.sql

CREATE TABLE Calling_Plans (Plan_Id, Plan_Name, KEY (Plan_Id));
CREATE TABLE Calls (Call_Id, Cust_Id, Plan_Id, Day, Month, Year, Charge,
                    KEY (Call_Id));

INSERT INTO Calling_Plans VALUES (1, 'basic'), (2, 'gold');
INSERT INTO Calls VALUES
  (1, 10, 1,  3,  1, 1995, 120), (2, 11, 1, 12,  1, 1995, 250),
  (3, 10, 2,  5,  2, 1995,  75), (4, 12, 1, 20,  2, 1995,  60),
  (5, 13, 2,  7,  2, 1994, 310), (6, 10, 2,  9,  3, 1995,  75),
  (7, 11, 1, 14,  3, 1995,  40), (8, 12, 2, 28, 12, 1994,  99);

-- The materialized view V1: monthly earnings per plan.
CREATE VIEW V1 AS
  SELECT Calls.Plan_Id, Plan_Name, Month, Year,
         SUM(Charge) AS Monthly_Earnings
  FROM Calls, Calling_Plans
  WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
  GROUP BY Calls.Plan_Id, Plan_Name, Month, Year;

-- The paper's query Q: answered from V1.
SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
FROM Calls, Calling_Plans
WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
GROUP BY Calling_Plans.Plan_Id, Plan_Name
HAVING SUM(Charge) < 1000000;

-- Why is / isn't V1 usable for other queries?
EXPLAIN SELECT Plan_Id, MIN(Charge) FROM Calls GROUP BY Plan_Id;

-- What summary view would help this query?
SUGGEST SELECT Plan_Name, SUM(Charge)
FROM Calls, Calling_Plans
WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
GROUP BY Plan_Name;
