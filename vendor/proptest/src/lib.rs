//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of the proptest 1.x API that the
//! workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, [`arbitrary::any`], regex-string
//! strategies, tuple/range/`Just` strategies, `collection::vec`,
//! `option::of`, `string::string_regex`, the [`proptest!`] test macro,
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test dependency: generation is purely random (no shrinking) with a
//! deterministic per-test seed derived from the test name. Failures
//! therefore reproduce across runs of the same binary, which is what the
//! workspace's property tests rely on in practice.
//!
//! ## Regression replay
//!
//! Sibling `proptest-regressions` files (`tests/<name>.proptest-regressions`
//! next to the test source, as real proptest lays them out) *are* loaded,
//! and their recorded cases run before the random sweep:
//!
//! * `# shrinks to seed = N` comments (the format real proptest wrote for
//!   `seed in any::<u64>()` inputs) are replayed **exactly**: the SplitMix64
//!   output function is inverted ([`seed_for_value`]) to find the rng state
//!   whose first draw is `N`, so the first generated input reproduces the
//!   recorded value. For multi-input tests only the first draw is pinned.
//! * `cc <16 hex digits>` lines (the format this runner persists on a fresh
//!   failure) are exact rng seeds and replay the whole case verbatim.
//! * Legacy 64-hex `cc` hashes from real proptest are not invertible; their
//!   first 16 hex digits are replayed as a best-effort derived rng seed.
//!
//! A failing fresh case appends its exact rng seed to the regression file
//! (best effort — IO errors are ignored), mirroring real proptest's
//! persistence behaviour.

use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Deterministic generator used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Combinators mirror proptest's.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values accepted by `f` (regenerating otherwise).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// smaller sub-structure and returns the compound strategy; nesting
    /// is bounded by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Bias toward leaves so sizes stay bounded in expectation.
            strat = Union::new(vec![leaf.clone(), leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals are regex strategies (see [`string::string_regex`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy `{self}`: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            mantissa * (2f64).powi(exp)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3:1 Some:None, matching proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod string {
    use super::{Strategy, TestRng};

    /// Error from [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// One compiled regex element: a character set plus a repetition.
    #[derive(Debug, Clone)]
    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A strategy generating strings matching a (small) regex subset:
    /// literal chars, `.`, `[...]` classes with ranges, and the
    /// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        elements: Vec<Element>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for e in &self.elements {
                let n = e.min + rng.below(e.max - e.min + 1);
                for _ in 0..n {
                    out.push(e.chars[rng.below(e.chars.len())]);
                }
            }
            out
        }
    }

    fn any_char_class() -> Vec<char> {
        // Printable ASCII plus a few multibyte characters so lexer fuzz
        // tests see non-ASCII input too.
        let mut v: Vec<char> = (0x20u8..=0x7E).map(|b| b as char).collect();
        v.extend(['\t', '\n', 'é', '→', '∑']);
        v
    }

    pub(super) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut elements = Vec::new();
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    any_char_class()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            if lo > hi {
                                return Err(Error(format!("bad class range {lo}-{hi}")));
                            }
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    if i == chars.len() {
                        return Err(Error("unterminated character class".into()));
                    }
                    i += 1; // skip ']'
                    if set.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    set
                }
                '\\' => {
                    i += 1;
                    if i == chars.len() {
                        return Err(Error("dangling escape".into()));
                    }
                    let c = chars[i];
                    i += 1;
                    match c {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                        's' => vec![' ', '\t', '\n'],
                        other => vec![other],
                    }
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or_else(|| Error("unterminated quantifier".into()))?
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        let parts: Vec<&str> = body.split(',').collect();
                        let parse = |s: &str| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|_| Error(format!("bad quantifier `{body}`")))
                        };
                        match parts.as_slice() {
                            [n] => {
                                let n = parse(n)?;
                                (n, n)
                            }
                            [lo, hi] => (parse(lo)?, parse(hi)?),
                            _ => return Err(Error(format!("bad quantifier `{body}`"))),
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error("quantifier min > max".into()));
            }
            elements.push(Element {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { elements })
    }

    /// A strategy for strings matching `pattern` (subset, see
    /// [`RegexGeneratorStrategy`]).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern)
    }
}

pub mod test_runner {
    /// Configuration accepted by `proptest!`'s inner attribute.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure value a proptest body may return with `?` / `return Err(..)`.
    /// Bodies are wrapped to return `Result<(), TestCaseError>` so that
    /// `return Ok(())` (early accept) compiles as in real proptest.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified with the given message.
        Fail(String),
        /// The generated case should be skipped (treated as a pass here).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejected (skipped) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Modular inverse of an odd `u64` (Newton iteration; 6 rounds exceed 64
/// correct bits starting from the 3 the seed value itself provides).
const fn inv_u64(a: u64) -> u64 {
    let mut x = a;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

const SPLITMIX_GAMMA: u64 = 0x9E3779B97F4A7C15;
const INV_MUL1: u64 = inv_u64(0xBF58476D1CE4E5B9);
const INV_MUL2: u64 = inv_u64(0x94D049BB133111EB);

/// Invert the SplitMix64 output mix used by [`TestRng::next_u64`].
fn unmix(mut z: u64) -> u64 {
    z ^= (z >> 31) ^ (z >> 62);
    z = z.wrapping_mul(INV_MUL2);
    z ^= (z >> 27) ^ (z >> 54);
    z = z.wrapping_mul(INV_MUL1);
    z ^= (z >> 30) ^ (z >> 60);
    z
}

/// The [`TestRng::seed_from_u64`] seed whose **first** `next_u64` draw is
/// exactly `value`. This is how `# shrinks to seed = N` regression entries
/// (recording the failing *value* of a `seed in any::<u64>()` input) are
/// replayed exactly.
pub fn seed_for_value(value: u64) -> u64 {
    unmix(value).wrapping_sub(SPLITMIX_GAMMA) ^ SPLITMIX_GAMMA
}

/// Where the regression file for a test source lives:
/// `<manifest>/tests/<file stem>.proptest-regressions` (real proptest's
/// layout for integration tests). `file` is the `file!()` of the test.
#[doc(hidden)]
pub fn regression_path(manifest_dir: &str, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Path::new(manifest_dir)
        .join("tests")
        .join(format!("{stem}.proptest-regressions"))
}

/// Parse a regression file into the rng seeds to replay, in file order.
/// Missing or unreadable files yield no seeds (nothing to replay).
pub fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        // Recorded failing value: exact replay via output-mix inversion.
        if let Some(rest) = line.split("seed = ").nth(1) {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse::<u64>() {
                seeds.push(seed_for_value(v));
                continue;
            }
        }
        // `cc <hex>`: 16 hex digits = exact rng seed persisted by this
        // runner; longer legacy hashes replay their prefix (best effort).
        if let Some(rest) = line.strip_prefix("cc ") {
            let token: &str = rest.split_whitespace().next().unwrap_or("");
            let hex: String = token
                .chars()
                .take(16)
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            if hex.len() == 16 {
                if let Ok(s) = u64::from_str_radix(&hex, 16) {
                    seeds.push(s);
                }
            }
        }
    }
    seeds
}

/// Append a failing case's exact rng seed to the regression file (no-op if
/// an identical entry already exists; IO errors are swallowed — persistence
/// is best effort, the failure itself still panics with the seed).
#[doc(hidden)]
pub fn persist_regression(path: &Path, rng_seed: u64) {
    let entry = format!("cc {rng_seed:016x}");
    if let Ok(existing) = std::fs::read_to_string(path) {
        if existing.lines().any(|l| l.trim().starts_with(&entry)) {
            return;
        }
    }
    use std::io::Write;
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{entry} # exact rng seed, replayed verbatim"));
}

/// FNV-1a over the test name: the per-test base seed.
#[doc(hidden)]
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define `#[test]` functions over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in any::<u64>(), (a, b) in (0..10, 0..10)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
            let reg_path = $crate::regression_path(env!("CARGO_MANIFEST_DIR"), file!());
            // One case from one rng seed. Returns Ok(()), a failure
            // message, or re-raises the body's panic after reporting.
            let run_one = |rng_seed: u64, label: &str| {
                let mut rng = $crate::TestRng::seed_from_u64(rng_seed);
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                // The body runs in a Result-returning closure so that
                // `return Ok(())` / `Err(TestCaseError)` compile as in real
                // proptest; the trailing Ok(()) covers plain `()` bodies.
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<
                            (), $crate::test_runner::TestCaseError,
                        > {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        $crate::persist_regression(&reg_path, rng_seed);
                        panic!(
                            "proptest: {} failed at {} (rng seed {:#018x}): {}",
                            stringify!($name), label, rng_seed, msg);
                    }
                    Err(payload) => {
                        $crate::persist_regression(&reg_path, rng_seed);
                        eprintln!(
                            "proptest: {} failed at {} (rng seed {:#018x})",
                            stringify!($name), label, rng_seed);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            };
            // Recorded regressions replay before the random sweep.
            let replay = $crate::regression_seeds(&reg_path);
            for (i, seed) in replay.iter().enumerate() {
                run_one(*seed, &format!("regression {}/{}", i + 1, replay.len()));
            }
            for case in 0..config.cases as u64 {
                run_one(
                    base ^ case.wrapping_mul(0x9E3779B97F4A7C15),
                    &format!("case {}/{} (base seed {:#x})", case + 1, config.cases, base),
                );
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = crate::string::string_regex("[a-z][a-z0-9_]{0,6}").unwrap();
        for _ in 0..200 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() <= 7, "{v:?}");
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let printable = crate::string::string_regex("[ -~]{0,80}").unwrap();
        for _ in 0..50 {
            let v = crate::Strategy::generate(&printable, &mut rng);
            assert!(v.chars().count() <= 80);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let strat = (0i64..10, any::<bool>(), Just(7u8)).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..100 {
            let (a, _b, c) = crate::Strategy::generate(&strat, &mut rng);
            assert!((0..10).contains(&a));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(crate::Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(depth(&crate::Strategy::generate(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_with_config(x in any::<u64>(), small in 0usize..4) {
            prop_assert!(small < 4);
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn macro_runs_with_default_config(v in crate::collection::vec(0i32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }
}
