//! The runner must load the sibling `replay.proptest-regressions` file and
//! run its recorded cases *before* the random sweep. The file commits two
//! entries:
//!
//! 1. `# shrinks to seed = 1234567890123456789` — a recorded failing
//!    *value* (real proptest's comment format); replayed exactly by
//!    inverting the SplitMix64 output mix, so the first generated input
//!    must equal that value.
//! 2. `cc 00000000deadbeef` — an exact rng seed (the format this runner
//!    persists); the whole case replays from `seed_from_u64(0xdeadbeef)`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn replays_recorded_regressions_first(x in any::<u64>()) {
        let n = CASE.fetch_add(1, Ordering::SeqCst);
        if n == 0 {
            // First executed case = first regression entry, exactly.
            prop_assert_eq!(x, 1234567890123456789u64);
        }
        if n == 1 {
            // Second entry: exact rng seed 0xdeadbeef.
            let mut rng = proptest::TestRng::seed_from_u64(0xdeadbeef);
            let expected = rng.next_u64();
            prop_assert_eq!(x, expected);
        }
    }
}

#[test]
fn seed_for_value_inverts_first_draw() {
    let mut probe = proptest::TestRng::seed_from_u64(99);
    for _ in 0..200 {
        let v = probe.next_u64();
        let mut rng = proptest::TestRng::seed_from_u64(proptest::seed_for_value(v));
        assert_eq!(rng.next_u64(), v);
    }
}

#[test]
fn regression_files_parse_and_persist() {
    let path = std::env::temp_dir().join(format!(
        "aggview-proptest-replay-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    assert!(proptest::regression_seeds(&path).is_empty(), "missing file");

    std::fs::write(
        &path,
        "# comment header\n\
         cc 74c2a15f8e0b4d219a3c5e7f01b28d46c9e0f1a2b3c4d5e6f708192a3b4c5d6e # shrinks to seed = 42\n\
         cc 00000000000000ff\n\
         not a regression line\n",
    )
    .unwrap();
    let seeds = proptest::regression_seeds(&path);
    // Line 1 carries a recorded value: replayed via inversion (the hash is
    // ignored in favour of the exact value). Line 2 is an exact seed.
    assert_eq!(seeds.len(), 2);
    let mut rng = proptest::TestRng::seed_from_u64(seeds[0]);
    assert_eq!(rng.next_u64(), 42);
    assert_eq!(seeds[1], 0xff);

    // Persisting appends an exact-seed entry once.
    proptest::persist_regression(&path, 0xABCDEF);
    proptest::persist_regression(&path, 0xABCDEF);
    let seeds = proptest::regression_seeds(&path);
    assert_eq!(seeds.len(), 3);
    assert_eq!(seeds[2], 0xABCDEF);
    let _ = std::fs::remove_file(&path);
}
