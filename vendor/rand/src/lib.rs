//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the subset of the rand 0.9 API that the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`seq::IndexedRandom::choose`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic for a given seed, which is all the
//! workspace's property tests and data generators require.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types with uniform sampling over an interval. The generic
/// [`SampleRange`] impls below are written over `T: SampleUniform` (as in
/// real rand) so that type inference flows from the use site into the
/// range's integer literals — e.g. indexing a slice with
/// `rng.random_range(0..3)` infers `usize`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: $t, hi: $t, inclusive: bool, rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) + inclusive as i128;
                assert!(span > 0, "cannot sample empty range");
                // Multiply-shift bounded sampling (negligible bias for the
                // test-sized spans used here).
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        lo: f64,
        hi: f64,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).random_range(0..u64::MAX) != c.random_range(0..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-3..10i32);
            assert!((-3..10).contains(&v));
            let w = rng.random_range(1..=28i64);
            assert!((1..=28).contains(&w));
            let u = rng.random_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
