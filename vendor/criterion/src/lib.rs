//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of the criterion 0.x API used by the
//! workspace's benches: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_with_input` / `bench_function`
//! on the group, [`Bencher::iter`], [`BenchmarkId`], and [`Throughput`].
//!
//! Measurement is deliberately simple: per benchmark point it warms up,
//! sizes an iteration batch to roughly `measurement_ms`, takes
//! `SAMPLES` timed samples and reports the median (plus min/max and,
//! when a [`Throughput`] is set, elements per second). No HTML reports,
//! no statistical regression tests — numbers print to stdout, which is
//! what the repo's `scripts/bench_snapshot.sh` consumes.

use std::fmt;
use std::time::{Duration, Instant};

const SAMPLES: usize = 7;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    /// Target measurement time per sample batch, milliseconds.
    measurement_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        // `cargo bench` passes `--bench`; anything else non-flag is a
        // name filter, mirroring criterion's CLI contract.
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            measurement_ms: 300,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmark points.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// An identifier for one benchmark point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmark points sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration for subsequent points.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.wants(&full) {
            let mut b = Bencher::new(self.criterion.measurement_ms);
            f(&mut b, input);
            b.report(&full, self.throughput);
        }
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.wants(&full) {
            let mut b = Bencher::new(self.criterion.measurement_ms);
            f(&mut b);
            b.report(&full, self.throughput);
        }
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    measurement_ms: u64,
    samples: Vec<Duration>, // per-iteration durations
}

impl Bencher {
    fn new(measurement_ms: u64) -> Self {
        Bencher {
            measurement_ms,
            samples: Vec::new(),
        }
    }

    /// Run `f` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim each sample batch at roughly
        // measurement_ms / SAMPLES of wall time.
        let t = Instant::now();
        std::hint::black_box(f());
        let once = t.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(self.measurement_ms) / SAMPLES as u32;
        let batch = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!(
                "  {:>12.0} elem/s",
                n as f64 / median.as_secs_f64().max(1e-12)
            ),
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64().max(1e-12))
            }
            None => String::new(),
        };
        println!(
            "{id:<40} time: [{} {} {}]{rate}",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions under one callable symbol.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(10);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.samples.iter().all(|d| d.as_nanos() > 0));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 64).id, "f/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
    }
}
