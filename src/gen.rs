//! Random workload generation for property tests and experiments.
//!
//! Two generators:
//! * [`random_query`] — arbitrary single-block queries over a catalog
//!   (random joins, filters, grouping, aggregation, HAVING);
//! * [`embedded_view`] — a view carved out of a query (a subset of its
//!   `FROM` occurrences, the restriction of its conditions to those
//!   occurrences, and outputs that cover what the query needs). By
//!   construction such a view satisfies the paper's usability conditions,
//!   so it drives the *completeness* experiments; `random_query`-generated
//!   views drive the *soundness* experiments (any rewriting found must be
//!   equivalent).

use aggview_catalog::{Catalog, TableSchema};
use aggview_core::ViewDef;
use aggview_sql::ast::{
    AggCall, AggFunc, BoolExpr, CmpOp, ColumnRef, Expr, Query, SelectItem, TableRef,
};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// Knobs for [`random_query`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of `FROM` occurrences.
    pub max_tables: usize,
    /// Maximum number of `WHERE` atoms.
    pub max_atoms: usize,
    /// Allow `<`, `<=`, `<>` atoms (off = equality-only, the fragment of
    /// the completeness theorems).
    pub inequalities: bool,
    /// Probability that the query has grouping/aggregation.
    pub aggregate_probability: f64,
    /// Constant domain for generated literals (`0..domain`).
    pub domain: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_tables: 3,
            max_atoms: 4,
            inequalities: true,
            aggregate_probability: 0.6,
            domain: 4,
        }
    }
}

/// The fixed experiment schema: three multiset tables of mixed arity.
pub fn experiment_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new("R1", ["A", "B", "C", "D"]))
        .expect("fresh catalog");
    cat.add_table(TableSchema::new("R2", ["E", "F"]))
        .expect("fresh catalog");
    cat.add_table(TableSchema::new("R3", ["G", "H", "I"]))
        .expect("fresh catalog");
    cat
}

/// All `(binding, column)` pairs of a query's `FROM` list.
fn all_columns(query: &Query, catalog: &Catalog) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    for t in &query.from {
        let schema = catalog.table(&t.table).expect("generated over catalog");
        for c in &schema.columns {
            out.push(ColumnRef::qualified(t.binding_name(), c.name.clone()));
        }
    }
    out
}

/// Generate a random single-block query over `catalog`.
pub fn random_query(rng: &mut StdRng, catalog: &Catalog, cfg: &GenConfig) -> Query {
    let tables: Vec<&TableSchema> = catalog.tables().collect();
    let n_tables = rng.random_range(1..=cfg.max_tables);
    let from: Vec<TableRef> = (0..n_tables)
        .map(|i| {
            let t = tables.choose(rng).expect("non-empty catalog");
            TableRef::aliased(t.name.clone(), format!("t{i}"))
        })
        .collect();
    let mut query = Query {
        distinct: false,
        select: Vec::new(),
        from,
        where_clause: None,
        group_by: Vec::new(),
        having: None,
    };
    let cols = all_columns(&query, catalog);

    // WHERE: random atoms, biased toward equalities.
    let n_atoms = rng.random_range(0..=cfg.max_atoms);
    let mut atoms = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms {
        let lhs = cols.choose(rng).expect("tables have columns").clone();
        let op = if cfg.inequalities && rng.random_bool(0.3) {
            *[CmpOp::Lt, CmpOp::Le, CmpOp::Ne]
                .choose(rng)
                .expect("non-empty")
        } else {
            CmpOp::Eq
        };
        let rhs = if rng.random_bool(0.5) {
            Expr::Column(cols.choose(rng).expect("tables have columns").clone())
        } else {
            Expr::int(rng.random_range(0..cfg.domain))
        };
        atoms.push(BoolExpr::cmp(Expr::Column(lhs), op, rhs));
    }
    query.where_clause = BoolExpr::conjoin(atoms);

    if rng.random_bool(cfg.aggregate_probability) {
        // Grouped query: 1-2 grouping columns, group outputs + aggregates.
        let n_groups = rng.random_range(1..=2.min(cols.len()));
        let mut groups: Vec<ColumnRef> = Vec::new();
        while groups.len() < n_groups {
            let c = cols.choose(rng).expect("tables have columns").clone();
            if !groups.contains(&c) {
                groups.push(c);
            }
        }
        query.group_by = groups.clone();
        for g in &groups {
            query.select.push(SelectItem::expr(Expr::Column(g.clone())));
        }
        let n_aggs = rng.random_range(1..=2);
        for _ in 0..n_aggs {
            let func = *[
                AggFunc::Sum,
                AggFunc::Count,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
            ]
            .choose(rng)
            .expect("non-empty");
            let arg = cols.choose(rng).expect("tables have columns").clone();
            query
                .select
                .push(SelectItem::expr(Expr::Agg(AggCall::on_column(func, arg))));
        }
        if rng.random_bool(0.3) {
            let func = *[AggFunc::Sum, AggFunc::Count]
                .choose(rng)
                .expect("non-empty");
            let arg = cols.choose(rng).expect("tables have columns").clone();
            query.having = Some(BoolExpr::cmp(
                Expr::Agg(AggCall::on_column(func, arg)),
                *[CmpOp::Gt, CmpOp::Le].choose(rng).expect("non-empty"),
                Expr::int(rng.random_range(0..cfg.domain * 10)),
            ));
        }
    } else {
        // Conjunctive query: 1-3 output columns, occasionally DISTINCT
        // (exercising the Section 5.2 set-semantics paths).
        query.distinct = rng.random_bool(0.2);
        let n_sel = rng.random_range(1..=3.min(cols.len()));
        for _ in 0..n_sel {
            let c = cols.choose(rng).expect("tables have columns").clone();
            query.select.push(SelectItem::expr(Expr::Column(c)));
        }
    }
    query
}

/// Carve a view out of `query`: choose a non-empty subset of its `FROM`
/// occurrences, keep exactly the conditions local to them, and expose every
/// column (conjunctive) or the needed grouping columns plus aggregates
/// (aggregated). Such a view satisfies the usability conditions by
/// construction, so the rewriter must find a rewriting with it.
pub fn embedded_view(
    rng: &mut StdRng,
    query: &Query,
    catalog: &Catalog,
    name: &str,
    aggregated: bool,
) -> Option<ViewDef> {
    let n = query.from.len();
    // Random non-empty subset of occurrences.
    let mut chosen: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.6)).collect();
    if chosen.is_empty() {
        chosen.push(rng.random_range(0..n));
    }

    // View FROM: same base tables, fresh aliases u{i}; mapping from the
    // query's binding names to the view's.
    let mut vfrom = Vec::new();
    let mut rename: Vec<(String, String)> = Vec::new(); // query binding -> view binding
    for (vi, &qi) in chosen.iter().enumerate() {
        let t = &query.from[qi];
        let alias = format!("u{vi}");
        rename.push((t.binding_name().to_string(), alias.clone()));
        vfrom.push(TableRef::aliased(t.table.clone(), alias));
    }
    let renamed = |c: &ColumnRef| -> Option<ColumnRef> {
        let q = c.table.as_deref()?;
        rename
            .iter()
            .find(|(from, _)| from == q)
            .map(|(_, to)| ColumnRef::qualified(to.clone(), c.column.clone()))
    };

    // Conditions local to the chosen subset.
    let mut vatoms = Vec::new();
    if let Some(w) = &query.where_clause {
        'atom: for atom in w.conjuncts() {
            let BoolExpr::Cmp { lhs, op, rhs } = atom else {
                continue;
            };
            let mut sides = Vec::new();
            for side in [lhs, rhs] {
                match side {
                    Expr::Column(c) => match renamed(c) {
                        Some(rc) => sides.push(Expr::Column(rc)),
                        None => continue 'atom, // touches an unchosen table
                    },
                    other => sides.push(other.clone()),
                }
            }
            let rhs_side = sides.pop().expect("two sides");
            let lhs_side = sides.pop().expect("two sides");
            vatoms.push(BoolExpr::cmp(lhs_side, *op, rhs_side));
        }
    }

    // Every column of the chosen tables, view-side.
    let mut vcols: Vec<ColumnRef> = Vec::new();
    for t in &vfrom {
        let schema = catalog.table(&t.table)?;
        for c in &schema.columns {
            vcols.push(ColumnRef::qualified(t.binding_name(), c.name.clone()));
        }
    }

    let mut group_by: Vec<ColumnRef> = Vec::new();
    let select: Vec<SelectItem> = if aggregated {
        // Group by every column the query could need from this subset:
        // conservatively, all columns that appear (renamed) in the query's
        // GROUP BY / SELECT columns / cross conditions — here we simply
        // group by a random superset including all columns referenced
        // outside the view's local conditions. Simplest sound choice that
        // still coalesces: group by all columns except a random victim,
        // aggregate the victim, and always add COUNT.
        let victim = rng.random_range(0..vcols.len());
        for (i, c) in vcols.iter().enumerate() {
            if i != victim {
                group_by.push(c.clone());
            }
        }
        if group_by.is_empty() {
            return None;
        }
        let mut sel: Vec<SelectItem> = group_by
            .iter()
            .map(|c| SelectItem::expr(Expr::Column(c.clone())))
            .collect();
        let vic = vcols[victim].clone();
        sel.push(SelectItem::aliased(
            Expr::Agg(AggCall::on_column(AggFunc::Sum, vic.clone())),
            "agg_sum",
        ));
        sel.push(SelectItem::aliased(
            Expr::Agg(AggCall::on_column(AggFunc::Min, vic.clone())),
            "agg_min",
        ));
        sel.push(SelectItem::aliased(
            Expr::Agg(AggCall::on_column(AggFunc::Count, vic)),
            "agg_cnt",
        ));
        sel
    } else {
        vcols
            .iter()
            .map(|c| SelectItem::expr(Expr::Column(c.clone())))
            .collect()
    };

    Some(ViewDef::new(
        name,
        Query {
            distinct: false,
            select,
            from: vfrom,
            where_clause: BoolExpr::conjoin(vatoms),
            group_by,
            having: None,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_core::Canonical;
    use rand::SeedableRng;

    #[test]
    fn random_queries_canonicalize() {
        let cat = experiment_catalog();
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let q = random_query(&mut rng, &cat, &cfg);
            Canonical::from_query(&q, &cat)
                .unwrap_or_else(|e| panic!("generated query must canonicalize: {e}\n  {q}"));
        }
    }

    #[test]
    fn embedded_views_canonicalize() {
        let cat = experiment_catalog();
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..200 {
            let q = random_query(&mut rng, &cat, &cfg);
            let aggregated = i % 2 == 0;
            if let Some(v) = embedded_view(&mut rng, &q, &cat, "V", aggregated) {
                Canonical::from_query(&v.query, &cat).unwrap_or_else(|e| {
                    panic!("embedded view must canonicalize: {e}\n  {}", v.query)
                });
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cat = experiment_catalog();
        let cfg = GenConfig::default();
        let q1 = random_query(&mut StdRng::seed_from_u64(5), &cat, &cfg);
        let q2 = random_query(&mut StdRng::seed_from_u64(5), &cat, &cfg);
        assert_eq!(q1, q2);
    }
}
