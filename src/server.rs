//! `aggview-server`: the shared-state concurrent serving layer.
//!
//! A [`SharedStore`] lets many in-process sessions share one catalog, one
//! set of materialized views, and one pool of group indexes, with
//! snapshot isolation between readers and writers:
//!
//! * **Readers are lock-free.** Every `SELECT` pins the current
//!   [`StoreSnapshot`] (one `Arc` clone through the engine's
//!   [`SnapshotCell`]) and runs canonicalization, the rewrite search,
//!   planning, and execution entirely against that immutable snapshot —
//!   a concurrent write never blocks it and can never tear it.
//! * **Writes serialize through one writer thread.** Session handles
//!   submit `CREATE TABLE` / `CREATE VIEW` / `INSERT` / `DELETE` to a
//!   queue; the writer drains *everything currently queued* into one
//!   batch, applies it to its private master [`EngineState`] through the
//!   same incremental-maintenance paths a local session uses, then
//!   publishes a single new snapshot for the whole batch. Under
//!   concurrent write pressure the per-snapshot clone cost amortizes
//!   across the batch; a submitter is acked only after the snapshot
//!   containing its write is published, so every handle reads its own
//!   writes.
//! * **Schema epochs drive plan-cache invalidation.** The snapshot
//!   carries a schema epoch bumped by every DDL statement; each handle's
//!   private plan cache syncs to it before lookups, reusing the lazy
//!   epoch-invalidation scheme of the per-session cache (a plan compiled
//!   against an older catalog universe is dropped, never served).
//!
//! Create handles with [`SharedStore::session`]; each handle is a full
//! [`crate::session::Session`] (same statement semantics, same
//! `StatementOutcome`s) and owns its private plan cache and rewrite
//! options, so the differential harness's session-options lattice covers
//! store-backed sessions unchanged.

use crate::session::{err, Session, SessionError, SessionOptions};
use crate::state::{Applied, EngineState, WritePolicy};
use aggview_engine::snapshot::{SnapshotCell, StoreStats};
use aggview_obs::{CounterId, MetricsRegistry, ObsOptions, ObsSnapshot, Stage, StoreSection};
use aggview_sql::{CreateTable, CreateView, Delete, Insert};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One immutable published state of the store.
#[derive(Debug)]
pub struct StoreSnapshot {
    /// Catalog, relations (with indexes), and view definitions.
    pub state: EngineState,
    /// Publish sequence number (strictly increasing; 0 = the empty
    /// initial snapshot).
    pub epoch: u64,
    /// Schema epoch: bumped once per applied DDL statement. Plan caches
    /// compiled under an older schema epoch must not serve.
    pub schema_epoch: u64,
}

/// A write statement submitted to the store's writer thread.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `CREATE VIEW` (registered and materialized by the writer).
    CreateView(CreateView),
    /// `INSERT`.
    Insert(Insert),
    /// `DELETE`.
    Delete(Delete),
}

struct WriteRequest {
    op: WriteOp,
    ack: Sender<Result<Applied, SessionError>>,
    /// When the submitter enqueued the request — lets the writer thread
    /// split queue wait from apply+publish cost in [`StoreStats`].
    submitted: std::time::Instant,
}

/// The state the writer thread and every handle share. The writer holds
/// only this (never `StoreInner`), so dropping the last handle is what
/// disconnects the queue and lets the thread exit.
struct Shared {
    cell: SnapshotCell<StoreSnapshot>,
    stats: StoreStats,
    policy: WritePolicy,
    /// The store-wide observability registry. One per store, shared by
    /// every handle and every published snapshot (their databases clone
    /// the `Arc`), so `serve --metrics` sees all sessions at once.
    /// `None` when the store was created with observability disabled.
    metrics: Option<Arc<MetricsRegistry>>,
}

struct StoreInner {
    shared: Arc<Shared>,
    // Held in Options (behind a mutex for `Sync`) so Drop can release
    // them in order: dropping the last sender disconnects the queue, the
    // writer drains and exits, the join reaps it.
    tx: std::sync::Mutex<Option<Sender<WriteRequest>>>,
    writer: std::sync::Mutex<Option<JoinHandle<()>>>,
}

impl Drop for StoreInner {
    fn drop(&mut self) {
        if let Ok(mut tx) = self.tx.lock() {
            *tx = None;
        }
        if let Some(h) = self.writer.lock().ok().and_then(|mut w| w.take()) {
            let _ = h.join();
        }
    }
}

/// A shared, snapshot-isolated store serving many concurrent sessions.
///
/// Cloning is cheap (an `Arc` bump plus a queue-sender clone); every
/// session handle owns a clone. The writer thread exits when the last
/// clone drops.
#[derive(Clone)]
pub struct SharedStore {
    // Field order is load-bearing: fields drop in declaration order, and
    // `tx` must drop before `inner` — `StoreInner::drop` joins the
    // writer thread, which only exits once every queue sender is gone.
    tx: Sender<WriteRequest>,
    inner: Arc<StoreInner>,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore")
            .field("epoch", &self.epoch())
            .field("schema_epoch", &self.schema_epoch())
            .finish()
    }
}

impl SharedStore {
    /// An empty store. `policy` fixes the store-wide maintenance policy
    /// (group indexes on materialized views, delta vs. recompute) — the
    /// materialized state is shared, so these cannot vary per handle.
    /// Observability is on with the default [`ObsOptions`]; use
    /// [`SharedStore::with_obs`] to configure or disable it.
    pub fn new(policy: WritePolicy) -> Self {
        SharedStore::with_obs(policy, ObsOptions::default())
    }

    /// An empty store with an explicit observability configuration
    /// (`obs.enabled = false` attaches no registry at all).
    pub fn with_obs(policy: WritePolicy, obs: ObsOptions) -> Self {
        let metrics = obs.enabled.then(|| Arc::new(MetricsRegistry::new(&obs)));
        let (tx, rx) = mpsc::channel::<WriteRequest>();
        let mut initial_state = EngineState::new();
        if let Some(m) = &metrics {
            initial_state.db.set_metrics(Arc::clone(m));
        }
        let initial = StoreSnapshot {
            state: initial_state,
            epoch: 0,
            schema_epoch: 0,
        };
        let shared = Arc::new(Shared {
            cell: SnapshotCell::new(initial),
            stats: StoreStats::default(),
            policy,
            metrics,
        });
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aggview-store-writer".into())
                .spawn(move || writer_loop(&shared, rx))
                .expect("spawn store writer")
        };
        let inner = Arc::new(StoreInner {
            shared,
            tx: std::sync::Mutex::new(Some(tx.clone())),
            writer: std::sync::Mutex::new(Some(writer)),
        });
        SharedStore { inner, tx }
    }

    /// A store with the default policy (indexes on, delta maintenance).
    pub fn with_defaults() -> Self {
        SharedStore::new(WritePolicy::default())
    }

    /// A new session handle over this store (private plan cache and
    /// rewrite options; shared snapshots and writer).
    pub fn session(&self, options: SessionOptions) -> Session {
        Session::on_store(self.clone(), options)
    }

    /// Pin the current snapshot.
    pub fn load(&self) -> Arc<StoreSnapshot> {
        self.inner.shared.cell.load()
    }

    /// Submit one write and block until the snapshot containing it is
    /// published (read-your-writes for the submitting handle).
    pub fn submit(&self, op: WriteOp) -> Result<Applied, SessionError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        if let Some(m) = &self.inner.shared.metrics {
            // Queue-depth gauge: up on submit, down when the writer
            // drains the request (in `writer_loop`).
            let depth = m.get(CounterId::WriteQueueDepth) + 1;
            m.add(CounterId::WriteQueueDepth, 1);
            m.raise_max(CounterId::WriteQueueMax, depth);
        }
        self.tx
            .send(WriteRequest {
                op,
                ack: ack_tx,
                submitted: std::time::Instant::now(),
            })
            .map_err(|_| err("store writer thread is gone"))?;
        ack_rx
            .recv()
            .map_err(|_| err("store writer thread dropped the request"))?
    }

    /// Publish sequence number of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.inner.shared.cell.version()
    }

    /// Schema epoch of the current snapshot.
    pub fn schema_epoch(&self) -> u64 {
        self.inner.shared.stats.schema_epoch.load(Ordering::Acquire)
    }

    /// The store-cumulative counters (publishes, batches, batch sizes).
    pub fn stats(&self) -> &StoreStats {
        &self.inner.shared.stats
    }

    /// The store-wide write policy.
    pub fn policy(&self) -> WritePolicy {
        self.inner.shared.policy
    }

    /// The store-wide observability registry, if observability is on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.shared.metrics.as_ref()
    }

    /// A store-wide observability snapshot: every registry counter, the
    /// stage latency histograms, the slow-query ring, plus a store
    /// section built from the live batching counters. This is what
    /// `aggview serve --metrics` scrapes. `None` when the store was
    /// created with observability disabled.
    pub fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        let m = self.metrics()?;
        let mut snap = ObsSnapshot::from_registry(m);
        snap.store = Some(self.store_section());
        Some(snap)
    }

    /// The live batching counters as an observability section (available
    /// even when the registry is disabled — the store counters are not
    /// part of the registry).
    pub fn store_section(&self) -> StoreSection {
        let s = self.stats();
        StoreSection {
            attached: true,
            epoch: self.epoch(),
            schema_epoch: self.schema_epoch(),
            publishes: s.publishes.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_ops: s.batched_ops.load(Ordering::Relaxed),
            max_batch: s.max_batch.load(Ordering::Relaxed),
        }
    }
}

/// The single writer: drain the queue into batches, apply each batch to
/// the master state, publish one snapshot per batch that changed
/// anything, then ack every submitter.
fn writer_loop(inner: &Shared, rx: Receiver<WriteRequest>) {
    let mut master = EngineState::new();
    if let Some(m) = &inner.metrics {
        // The master database records maintenance events; every published
        // clone inherits the same registry for reader-side index probes.
        master.db.set_metrics(Arc::clone(m));
    }
    let mut epoch = 0u64;
    let mut schema_epoch = 0u64;
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(req) = rx.try_recv() {
            batch.push(req);
        }
        if let Some(m) = &inner.metrics {
            m.sub(CounterId::WriteQueueDepth, batch.len() as u64);
        }
        // Queue wait ends here (the request is in the writer's hands);
        // everything from this point to the publish is real write-path
        // cost, accounted separately so client wall-clock latency
        // (`queue wait + apply+publish`) decomposes cleanly.
        for req in &batch {
            inner
                .stats
                .note_queue_wait(req.submitted.elapsed().as_nanos() as u64);
        }
        let work_started = std::time::Instant::now();
        let apply_span = inner.metrics.as_ref().map(|m| m.span(Stage::Apply));
        let mut results: Vec<Result<Applied, SessionError>> = Vec::with_capacity(batch.len());
        let mut applied = 0u64;
        for req in &batch {
            let r = apply(&mut master, &req.op, inner.policy);
            if let Ok(a) = &r {
                applied += 1;
                if a.schema_change {
                    schema_epoch += 1;
                }
            }
            results.push(r);
        }
        drop(apply_span);
        if applied > 0 {
            // One clone + publish for the whole batch: submitters are
            // acked only after this, so their next read sees the write.
            let publish_span = inner.metrics.as_ref().map(|m| m.span(Stage::Publish));
            inner
                .stats
                .schema_epoch
                .store(schema_epoch, Ordering::Release);
            epoch = inner.cell.publish(Arc::new(StoreSnapshot {
                state: master.clone(),
                epoch: epoch + 1,
                schema_epoch,
            }));
            drop(publish_span);
            inner.stats.publishes.fetch_add(1, Ordering::Relaxed);
            inner.stats.note_batch(applied);
            if let Some(m) = &inner.metrics {
                m.incr(CounterId::StorePublishes);
                m.incr(CounterId::StoreBatches);
                m.add(CounterId::StoreBatchedOps, applied);
            }
        }
        inner
            .stats
            .note_apply_publish(work_started.elapsed().as_nanos() as u64);
        for (req, result) in batch.into_iter().zip(results) {
            let _ = req.ack.send(result);
        }
    }
}

/// Apply one write op to the master state. Failed ops leave the state
/// unchanged (each statement validates before mutating).
fn apply(
    master: &mut EngineState,
    op: &WriteOp,
    policy: WritePolicy,
) -> Result<Applied, SessionError> {
    match op {
        WriteOp::CreateTable(ct) => master.create_table(ct),
        WriteOp::CreateView(cv) => master.create_view(cv, policy),
        WriteOp::Insert(ins) => master.insert(ins, policy),
        WriteOp::Delete(del) => master.delete(del, policy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_script;

    fn run_on(session: &mut Session, sql: &str) -> Vec<crate::session::StatementOutcome> {
        let stmts = parse_script(sql).expect("parses");
        session.run_script(&stmts).expect("runs")
    }

    #[test]
    fn two_handles_share_schema_and_data() {
        let store = SharedStore::with_defaults();
        let mut a = store.session(SessionOptions::default());
        let mut b = store.session(SessionOptions::default());
        run_on(
            &mut a,
            "CREATE TABLE T (x, y); INSERT INTO T VALUES (1, 5), (2, 7);",
        );
        // Handle B sees A's table and rows without any local DDL.
        let outcomes = run_on(&mut b, "SELECT x, SUM(y) FROM T GROUP BY x;");
        let crate::session::StatementOutcome::Answer { relation, .. } = &outcomes[0] else {
            panic!("expected an answer");
        };
        assert_eq!(relation.len(), 2);
        assert_eq!(store.epoch(), 2, "two write batches published");
        assert_eq!(store.schema_epoch(), 1, "one DDL applied");
    }

    #[test]
    fn writes_are_read_back_by_the_writer_handle() {
        let store = SharedStore::with_defaults();
        let mut s = store.session(SessionOptions::default());
        run_on(&mut s, "CREATE TABLE T (a);");
        run_on(&mut s, "INSERT INTO T VALUES (1), (2), (3);");
        let outcomes = run_on(&mut s, "SELECT a FROM T;");
        let crate::session::StatementOutcome::Answer { relation, .. } = &outcomes[0] else {
            panic!("expected an answer");
        };
        assert_eq!(relation.len(), 3, "read-your-writes");
    }

    #[test]
    fn failed_writes_do_not_publish() {
        let store = SharedStore::with_defaults();
        let mut s = store.session(SessionOptions::default());
        run_on(&mut s, "CREATE TABLE T (a);");
        let before = store.epoch();
        let stmts = parse_script("INSERT INTO T VALUES (1, 2);").unwrap();
        assert!(s.run_script(&stmts).is_err(), "arity mismatch must fail");
        assert_eq!(store.epoch(), before, "failed batch published nothing");
    }

    #[test]
    fn store_indexes_materialized_views() {
        let store = SharedStore::with_defaults();
        let mut s = store.session(SessionOptions::default());
        run_on(
            &mut s,
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (2, 7);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 3);",
        );
        let snap = store.load();
        let idx = snap.state.db.index("V").expect("V is indexed");
        assert!(idx.is_consistent_with(snap.state.db.get("V").unwrap()));
    }
}
