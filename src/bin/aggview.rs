//! The `aggview` CLI: run SQL scripts whose `SELECT` statements are
//! answered from materialized views whenever the rewriter proves one
//! usable.
//!
//! ```text
//! aggview [FLAGS] [script.sql ...]      # no files: read stdin
//!
//!   --verify         cross-check every rewritten answer against base tables
//!   --expand         enable the footnote-3 Nat-table expansion
//!   --paper-va       use the paper's V^a strategy instead of weighted sums
//!   --no-multi       single-view rewritings only
//!   --no-plan-cache  disable the serving-plan cache (full search per SELECT)
//!   --no-view-index  do not build group indexes on materialized views
//!   --interactive    REPL: read statements from stdin, execute per `;`
//!                    (`:stats` toggles per-query rewrite-search counters)
//! ```
//!
//! Script statements: `CREATE TABLE t (col, ..., KEY (col, ...))`,
//! `CREATE VIEW v AS SELECT ...`, `INSERT INTO t VALUES (...), ...`,
//! `SELECT ...`, `EXPLAIN SELECT ...` — semicolon-separated, `--` comments.

use aggview::rewrite::Strategy;
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sql::parse_script;
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut options = SessionOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut interactive = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verify" => options.verify = true,
            "--expand" => options.rewrite.enable_expand = true,
            "--paper-va" => options.rewrite.strategy = Strategy::PaperFaithful,
            "--no-multi" => options.rewrite.multi_view = false,
            "--no-plan-cache" => options.plan_cache_cap = 0,
            "--no-view-index" => options.index_views = false,
            "--interactive" | "-i" => interactive = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: aggview [--verify] [--expand] [--paper-va] [--no-multi] \
                            [--no-plan-cache] [--no-view-index] [--interactive] \
                            [script.sql ...]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }

    if interactive {
        return repl(options);
    }

    let mut source = String::new();
    if files.is_empty() {
        if std::io::stdin().read_to_string(&mut source).is_err() {
            eprintln!("error: failed to read stdin");
            return ExitCode::FAILURE;
        }
    } else {
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(text) => {
                    source.push_str(&text);
                    source.push('\n');
                }
                Err(e) => {
                    eprintln!("error: cannot read `{f}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let statements = match parse_script(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut session = Session::new(options);
    for stmt in &statements {
        println!("aggview> {stmt}");
        match session.execute(stmt) {
            Ok(outcome) => print!("{outcome}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Line-based REPL: statements accumulate until a terminating `;`; errors
/// are reported without ending the session. `quit` / `exit` / EOF leave;
/// `:stats` toggles a per-query line with the rewrite-search counters
/// (states expanded, candidates prefiltered/attempted, closure-cache hit
/// rate, threads, per-phase wall times).
fn repl(options: SessionOptions) -> ExitCode {
    let mut session = Session::new(options);
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut show_stats = false;
    eprintln!(
        "aggview interactive session — end statements with `;`, `:stats` to toggle \
         search counters, `quit` to leave"
    );
    loop {
        let prompt = if buffer.trim().is_empty() {
            "aggview> "
        } else {
            "    ...> "
        };
        eprint!("{prompt}");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        let trimmed = line.trim();
        if buffer.trim().is_empty() && matches!(trimmed, "quit" | "exit" | r"\q") {
            break;
        }
        if buffer.trim().is_empty() && trimmed == ":stats" {
            show_stats = !show_stats;
            eprintln!("search stats {}", if show_stats { "on" } else { "off" });
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        match parse_script(&buffer) {
            Ok(stmts) => {
                for stmt in &stmts {
                    match session.execute(stmt) {
                        Ok(outcome) => {
                            print!("{outcome}");
                            if show_stats {
                                if let StatementOutcome::Answer { search, .. } = &outcome {
                                    println!("-- search: {}", search.summary());
                                    println!("-- {}", search.plan_cache_summary());
                                }
                            }
                        }
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
            }
            Err(e) => eprintln!("parse error: {e}"),
        }
        buffer.clear();
    }
    ExitCode::SUCCESS
}
