//! The `aggview` CLI: run SQL scripts whose `SELECT` statements are
//! answered from materialized views whenever the rewriter proves one
//! usable.
//!
//! ```text
//! aggview [FLAGS] [script.sql ...]      # no files: read stdin
//! aggview serve [--sessions K] [--metrics] [FLAGS] [script.sql ...]
//!                                       # shared store, K session handles,
//!                                       # statements round-robin across them
//! aggview metrics [--human] [FLAGS] [script.sql ...]
//!                                       # run a script silently, dump the
//!                                       # observability snapshot (Prometheus
//!                                       # text format unless --human)
//! aggview bench-concurrent [--readers N] [--writers M] [--millis T] [--no-obs]
//!                                       # in-process concurrent micro-bench
//!
//!   --verify         cross-check every rewritten answer against base tables
//!   --expand         enable the footnote-3 Nat-table expansion
//!   --paper-va       use the paper's V^a strategy instead of weighted sums
//!   --no-multi       single-view rewritings only
//!   --no-plan-cache  disable the serving-plan cache (full search per SELECT)
//!   --no-view-index  do not build group indexes on materialized views
//!   --no-columnar    force the row-at-a-time interpreter (disable the
//!                    vectorized columnar execution path)
//!   --no-obs         disable the observability layer entirely (no registry,
//!                    no spans; EXPLAIN ANALYZE becomes an error)
//!   --slow-ms N      slow-query ring threshold in milliseconds (default 100)
//!   --shards N       hash-partition base tables across N shard stores and
//!                    answer SELECTs by scatter-gather (partial-aggregate
//!                    re-aggregation); N=0/absent keeps the local backend
//!   --interactive    REPL: read statements from stdin, execute per `;`
//!                    (`:stats` toggles per-query pipeline observability,
//!                    `:metrics` dumps the session-cumulative snapshot)
//! ```
//!
//! Script statements: `CREATE TABLE t (col, ..., KEY (col, ...))`,
//! `CREATE VIEW v AS SELECT ...`, `INSERT INTO t VALUES (...), ...`,
//! `SELECT ...`, `EXPLAIN SELECT ...`, `EXPLAIN ANALYZE SELECT ...` —
//! semicolon-separated, `--` comments.

use aggview::obs::{Format, MetricsRegistry, ObsOptions, Stage};
use aggview::rewrite::Strategy;
use aggview::server::SharedStore;
use aggview::session::{Session, SessionOptions, StatementOutcome};
use aggview::sharded::ShardedStore;
use aggview::sql::{parse_script, Statement};
use aggview::state::WritePolicy;
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve(&argv[1..]),
        Some("metrics") => return metrics(&argv[1..]),
        Some("bench-concurrent") => return bench_concurrent(&argv[1..]),
        _ => {}
    }
    let mut options = SessionOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut interactive = false;
    let mut shards: Option<usize> = None;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--verify" => options.verify = true,
            "--expand" => options.rewrite.enable_expand = true,
            "--paper-va" => options.rewrite.strategy = Strategy::PaperFaithful,
            "--no-multi" => options.rewrite.multi_view = false,
            "--no-plan-cache" => options.plan_cache_cap = 0,
            "--no-view-index" => options.index_views = false,
            "--no-columnar" => options.columnar = false,
            "--no-obs" => options.obs.enabled = false,
            "--slow-ms" => match parse_slow_ms(iter.next()) {
                Some(ms) => options.obs.slow_query_ms = ms,
                None => return ExitCode::FAILURE,
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(0) => shards = None,
                Some(n) => shards = Some(n),
                None => {
                    eprintln!("error: --shards needs a non-negative integer");
                    return ExitCode::FAILURE;
                }
            },
            "--interactive" | "-i" => interactive = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: aggview [--verify] [--expand] [--paper-va] [--no-multi] \
                            [--no-plan-cache] [--no-view-index] [--no-columnar] [--no-obs] [--slow-ms N] \
                            [--shards N] [--interactive] [script.sql ...]\n       \
                            aggview serve [--sessions K] [--metrics] [FLAGS] [script.sql ...]\n       \
                            aggview metrics [--human] [FLAGS] [script.sql ...]\n       \
                            aggview bench-concurrent [--readers N] [--writers M] [--millis T] \
                            [--no-obs]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }

    if interactive {
        return repl(options, shards);
    }

    let source = match read_source(&files) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // The session exists before parsing so the parse span lands in its
    // registry — the Parse stage is part of the pipeline, not overhead.
    let mut session = make_session(options, shards);
    let statements = match parse_timed(&source, session.metrics().map(|m| &**m)) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for stmt in &statements {
        println!("aggview> {stmt}");
        match session.execute(stmt) {
            Ok(outcome) => print!("{outcome}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// A local session, or (under `--shards N`) the driver session of a fresh
/// sharded store whose write policy mirrors the session options. The
/// session holds a clone of the store, which keeps the shard writer
/// threads alive for its lifetime.
fn make_session(options: SessionOptions, shards: Option<usize>) -> Session {
    match shards {
        Some(n) => ShardedStore::with_obs(
            n,
            WritePolicy {
                index_views: options.index_views,
                recompute_views: options.recompute_views,
                columnar: options.columnar,
            },
            options.obs.clone(),
        )
        .session(options),
        None => Session::new(options),
    }
}

/// Parse the `--slow-ms` operand (reports its own error).
fn parse_slow_ms(value: Option<&String>) -> Option<u64> {
    let parsed = value.and_then(|v| v.parse::<u64>().ok());
    if parsed.is_none() {
        eprintln!("error: --slow-ms needs a non-negative integer");
    }
    parsed
}

/// Concatenate the named script files, or read stdin when none given.
fn read_source(files: &[String]) -> Result<String, ExitCode> {
    let mut source = String::new();
    if files.is_empty() {
        if std::io::stdin().read_to_string(&mut source).is_err() {
            eprintln!("error: failed to read stdin");
            return Err(ExitCode::FAILURE);
        }
    } else {
        for f in files {
            match std::fs::read_to_string(f) {
                Ok(text) => {
                    source.push_str(&text);
                    source.push('\n');
                }
                Err(e) => {
                    eprintln!("error: cannot read `{f}`: {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
    }
    Ok(source)
}

/// Parse a script under a `Parse` stage span (when a registry is
/// attached), reporting parse errors to stderr.
fn parse_timed(
    source: &str,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<Statement>, ExitCode> {
    let _span = metrics.map(|m| m.span(Stage::Parse));
    match parse_script(source) {
        Ok(s) => Ok(s),
        Err(e) => {
            eprintln!("parse error: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `aggview serve`: execute a script against a [`SharedStore`] through K
/// session handles, round-robin one statement per handle. Every handle
/// shares the catalog, the materialized views, and the group indexes;
/// each keeps a private plan cache. The tail line reports the store
/// counters (epoch, publishes, batch sizes); `--metrics` appends the
/// store-wide observability snapshot in Prometheus text format.
fn serve(args: &[String]) -> ExitCode {
    let mut options = SessionOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut sessions = 2usize;
    let mut show_metrics = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--verify" => options.verify = true,
            "--expand" => options.rewrite.enable_expand = true,
            "--paper-va" => options.rewrite.strategy = Strategy::PaperFaithful,
            "--no-multi" => options.rewrite.multi_view = false,
            "--no-plan-cache" => options.plan_cache_cap = 0,
            "--no-view-index" => options.index_views = false,
            "--no-columnar" => options.columnar = false,
            "--no-obs" => options.obs.enabled = false,
            "--metrics" => show_metrics = true,
            "--slow-ms" => match parse_slow_ms(iter.next()) {
                Some(ms) => options.obs.slow_query_ms = ms,
                None => return ExitCode::FAILURE,
            },
            "--sessions" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(k) if k >= 1 => sessions = k,
                _ => {
                    eprintln!("error: --sessions needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if show_metrics && !options.obs.enabled {
        eprintln!("error: --metrics needs observability enabled (drop --no-obs)");
        return ExitCode::FAILURE;
    }

    let source = match read_source(&files) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let store = SharedStore::with_obs(
        WritePolicy {
            index_views: options.index_views,
            recompute_views: options.recompute_views,
            columnar: options.columnar,
        },
        options.obs.clone(),
    );
    let statements = match parse_timed(&source, store.metrics().map(|m| &**m)) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut handles: Vec<Session> = (0..sessions)
        .map(|_| store.session(options.clone()))
        .collect();
    for (i, stmt) in statements.iter().enumerate() {
        let h = i % handles.len();
        println!("s{h}> {stmt}");
        match handles[h].execute(stmt) {
            Ok(outcome) => print!("{outcome}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }
    let summary = store.store_section().summary();
    let tail = summary.strip_prefix("store: ").unwrap_or(&summary);
    println!("-- store: sessions={sessions} {tail}");
    if show_metrics {
        if let Some(snap) = store.obs_snapshot() {
            print!("{}", snap.render(Format::Prometheus));
        }
    }
    ExitCode::SUCCESS
}

/// `aggview metrics`: execute a script with per-statement output
/// suppressed, then dump the session's observability snapshot. The dump
/// is the whole of stdout, so it pipes straight into a scraper or
/// `promtool check metrics`. `--human` renders the human form (stage
/// latency table, slow queries) instead of Prometheus text exposition.
fn metrics(args: &[String]) -> ExitCode {
    let mut options = SessionOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut format = Format::Prometheus;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--verify" => options.verify = true,
            "--expand" => options.rewrite.enable_expand = true,
            "--paper-va" => options.rewrite.strategy = Strategy::PaperFaithful,
            "--no-multi" => options.rewrite.multi_view = false,
            "--no-plan-cache" => options.plan_cache_cap = 0,
            "--no-view-index" => options.index_views = false,
            "--no-columnar" => options.columnar = false,
            "--human" => format = Format::Human,
            "--slow-ms" => match parse_slow_ms(iter.next()) {
                Some(ms) => options.obs.slow_query_ms = ms,
                None => return ExitCode::FAILURE,
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    let source = match read_source(&files) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut session = Session::new(options);
    let statements = match parse_timed(&source, session.metrics().map(|m| &**m)) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for stmt in &statements {
        if let Err(e) = session.execute(stmt) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(snap) = session.obs_snapshot() else {
        eprintln!("error: no observability registry attached");
        return ExitCode::FAILURE;
    };
    print!("{}", snap.render(format));
    ExitCode::SUCCESS
}

/// `aggview bench-concurrent`: an in-process concurrent micro-benchmark.
/// N reader handles hammer a warm aggregation query against their pinned
/// snapshots while M writer handles stream single-row inserts; reports
/// read/write throughput and the store's batching counters. `--no-obs`
/// runs without a metrics registry (the two runs bracket the
/// observability overhead).
fn bench_concurrent(args: &[String]) -> ExitCode {
    let mut readers = 4usize;
    let mut writers = 1usize;
    let mut millis = 250u64;
    let mut obs = ObsOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut num = |name: &str| -> Option<u64> {
            let v = iter.next().and_then(|v| v.parse::<u64>().ok());
            if v.is_none() {
                eprintln!("error: {name} needs a non-negative integer");
            }
            v
        };
        match arg.as_str() {
            "--readers" => match num("--readers") {
                Some(n) if n >= 1 => readers = n as usize,
                _ => return ExitCode::FAILURE,
            },
            "--writers" => match num("--writers") {
                Some(n) => writers = n as usize,
                None => return ExitCode::FAILURE,
            },
            "--millis" => match num("--millis") {
                Some(n) if n >= 1 => millis = n,
                _ => return ExitCode::FAILURE,
            },
            "--no-obs" => obs.enabled = false,
            flag => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let store = SharedStore::with_obs(WritePolicy::default(), obs.clone());
    let session_options = || SessionOptions {
        obs: obs.clone(),
        ..SessionOptions::default()
    };
    let mut setup = store.session(session_options());
    let setup_sql = "CREATE TABLE Sales (Region, Product, Amount);
         CREATE VIEW Totals AS
           SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
           FROM Sales GROUP BY Region, Product;
         INSERT INTO Sales VALUES (1, 1, 10), (1, 2, 20), (2, 1, 30), (2, 2, 40);";
    let stmts = parse_script(setup_sql).expect("setup parses");
    if let Err(e) = setup.run_script(&stmts) {
        eprintln!("error: setup failed: {e}");
        return ExitCode::FAILURE;
    }
    let query = aggview::sql::parse_query("SELECT Region, SUM(Amount) FROM Sales GROUP BY Region")
        .expect("query parses");
    let read_stmt = aggview::sql::Statement::Select(query);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(millis);

    let mut threads = Vec::new();
    for r in 0..readers {
        let mut session = store.session(session_options());
        let stmt = read_stmt.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("bench-reader-{r}"))
                .spawn(move || {
                    let mut n = 0u64;
                    while std::time::Instant::now() < deadline {
                        session.execute(&stmt).expect("read succeeds");
                        n += 1;
                    }
                    (n, 0u64)
                })
                .expect("spawn reader"),
        );
    }
    for w in 0..writers {
        let mut session = store.session(session_options());
        threads.push(
            std::thread::Builder::new()
                .name(format!("bench-writer-{w}"))
                .spawn(move || {
                    let mut n = 0u64;
                    while std::time::Instant::now() < deadline {
                        let region = (n % 4 + 1) as i64;
                        let sql = format!(
                            "INSERT INTO Sales VALUES ({region}, {}, {});",
                            n % 7 + 1,
                            n % 100
                        );
                        let stmts = parse_script(&sql).expect("insert parses");
                        session.run_script(&stmts).expect("write succeeds");
                        n += 1;
                    }
                    (0u64, n)
                })
                .expect("spawn writer"),
        );
    }
    let (mut reads, mut writes) = (0u64, 0u64);
    for t in threads {
        let (r, w) = t.join().expect("bench thread");
        reads += r;
        writes += w;
    }
    let secs = millis as f64 / 1e3;
    println!("bench-concurrent: readers={readers} writers={writers} millis={millis}");
    println!(
        "reads:  {reads} ({:.0}/s total, {:.0}/s per reader)",
        reads as f64 / secs,
        reads as f64 / secs / readers.max(1) as f64
    );
    println!("writes: {writes} ({:.0}/s total)", writes as f64 / secs);
    let summary = store.store_section().summary();
    let tail = summary.strip_prefix("store: ").unwrap_or(&summary);
    println!("store:  {tail}");
    if let Some(snap) = store.obs_snapshot() {
        for stage in &snap.stages {
            let h = &stage.hist;
            println!(
                "stage:  {} count={} p50={} p95={} p99={} max={}",
                stage.stage.name(),
                h.count,
                h.p50_ns(),
                h.p95_ns(),
                h.p99_ns(),
                h.max_ns,
            );
        }
    }
    ExitCode::SUCCESS
}

/// Line-based REPL: statements accumulate until a terminating `;`; errors
/// are reported without ending the session. `quit` / `exit` / EOF leave;
/// `:stats` toggles a per-query observability block (rewrite-search
/// counters, plan-cache and store sections, per-stage timings);
/// `:metrics` dumps the session-cumulative snapshot on demand.
fn repl(mut options: SessionOptions, shards: Option<usize>) -> ExitCode {
    // Per-query snapshots power the `:stats` toggle; attaching them is
    // cheap (a handful of section structs per answer).
    if options.obs.enabled {
        options.obs.attach_answers = true;
    }
    let mut session = make_session(options, shards);
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut show_stats = false;
    eprintln!(
        "aggview interactive session — end statements with `;`, `:stats` to toggle \
         per-query observability, `:metrics` to dump the session snapshot, `quit` to leave"
    );
    loop {
        let prompt = if buffer.trim().is_empty() {
            "aggview> "
        } else {
            "    ...> "
        };
        eprint!("{prompt}");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        let trimmed = line.trim();
        if buffer.trim().is_empty() && matches!(trimmed, "quit" | "exit" | r"\q") {
            break;
        }
        if buffer.trim().is_empty() && trimmed == ":stats" {
            show_stats = !show_stats;
            eprintln!("search stats {}", if show_stats { "on" } else { "off" });
            continue;
        }
        if buffer.trim().is_empty() && trimmed == ":metrics" {
            match session.obs_snapshot() {
                Some(snap) => print!("{}", snap.render(Format::Human)),
                None => eprintln!("observability is off (session started with --no-obs)"),
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let parsed = {
            let registry = session.metrics().cloned();
            let _span = registry.as_deref().map(|m| m.span(Stage::Parse));
            parse_script(&buffer)
        };
        match parsed {
            Ok(stmts) => {
                for stmt in &stmts {
                    match session.execute(stmt) {
                        Ok(outcome) => {
                            print!("{outcome}");
                            if show_stats {
                                if let StatementOutcome::Answer { search, obs, .. } = &outcome {
                                    if let Some(snap) = obs {
                                        for line in snap.render(Format::Human).lines() {
                                            println!("-- {line}");
                                        }
                                    } else {
                                        // Observability off: the legacy
                                        // search-counter lines.
                                        println!("-- search: {}", search.summary());
                                        println!("-- {}", search.plan_cache_summary());
                                        println!("-- {}", search.store_summary());
                                    }
                                }
                            }
                        }
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
            }
            Err(e) => eprintln!("parse error: {e}"),
        }
        buffer.clear();
    }
    ExitCode::SUCCESS
}
