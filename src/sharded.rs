//! `ShardedStore`: scatter-gather serving over N independent shard
//! stores, justified by the paper's §4 partial-aggregate algebra.
//!
//! Every base table is hash-partitioned by its *shard column* (the first
//! column of its first declared key, or column 0) across N
//! [`SharedStore`]s — each with its own writer thread and snapshot cell,
//! so writes to different shards publish in parallel. The partitioning
//! hash is [`aggview_engine::shard::stable_shard_hash`], the same
//! cross-type twin-key normalization `GroupIndex` uses, so `1` and `1.0`
//! land on the same shard and values past 2^53 go to a deterministic
//! fallback shard.
//!
//! Write routing:
//! * DDL (`CREATE TABLE` / `CREATE VIEW`) broadcasts to every shard, so
//!   all shards share one schema universe and one view list.
//! * `INSERT` rows are validated against the catalog up front (keeping
//!   the unsharded all-or-nothing behavior), then grouped by the shard
//!   of their partition-key value and submitted only to the shards that
//!   received rows.
//! * `DELETE` broadcasts; each shard deletes its own matching rows and
//!   the acks are summed.
//!
//! Reads are routed by the session layer
//! ([`crate::session::Session`]'s `Sharded` backend): plannable
//! aggregates scatter to all shards and gather with the §4 recombination
//! operators ([`aggview_engine::shard::plan_gather`]); everything else
//! is answered on [`UnionState`], the lazily rebuilt union of all shard
//! snapshots, which reproduces unsharded answers (and error messages)
//! exactly.

use crate::server::{SharedStore, StoreSnapshot, WriteOp};
use crate::session::{err, Session, SessionError, SessionOptions};
use crate::state::{Applied, EngineState, WritePolicy};
use aggview_engine::shard::{self, GatherPlan};
use aggview_engine::value::lit_value;
use aggview_engine::{execute_with, GroupIndex};
use aggview_obs::{MetricsRegistry, ObsOptions, StoreSection};
use aggview_sql::{Insert, Literal, Query};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// N independent shard stores behind one routing facade. Cloning is
/// cheap (the shard handles are `Arc`-backed); every sharded session
/// owns a clone.
#[derive(Clone)]
pub struct ShardedStore {
    shards: Arc<Vec<SharedStore>>,
    policy: WritePolicy,
    /// The front-door registry the driver session records into (each
    /// shard store additionally keeps its own, surfaced with per-shard
    /// labels). `None` when observability is disabled.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("schema_epoch", &self.schema_epoch())
            .finish()
    }
}

impl ShardedStore {
    /// A store of `n` shards (clamped to at least 1) with observability
    /// on at the default [`ObsOptions`], mirroring [`SharedStore::new`].
    pub fn new(n: usize, policy: WritePolicy) -> Self {
        ShardedStore::with_obs(n, policy, ObsOptions::default())
    }

    /// A store of `n` shards with the given observability configuration;
    /// each shard store gets its own registry, plus one front-door
    /// registry for the driver session.
    pub fn with_obs(n: usize, policy: WritePolicy, obs: ObsOptions) -> Self {
        let n = n.max(1);
        let shards = (0..n)
            .map(|_| SharedStore::with_obs(policy, obs.clone()))
            .collect();
        let metrics = obs.enabled.then(|| Arc::new(MetricsRegistry::new(&obs)));
        ShardedStore {
            shards: Arc::new(shards),
            policy,
            metrics,
        }
    }

    /// A store of `n` shards with the default write policy.
    pub fn with_defaults(n: usize) -> Self {
        ShardedStore::new(n, WritePolicy::default())
    }

    /// How many shards this store has.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard stores, in shard order.
    pub fn shards(&self) -> &[SharedStore] {
        &self.shards
    }

    /// The write policy all shards share.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The front-door registry, if observability is on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// A driver session over this store.
    pub fn session(&self, options: SessionOptions) -> Session {
        Session::on_sharded_store(self.clone(), options)
    }

    /// Pin every shard's current snapshot, in shard order.
    pub fn load_all(&self) -> Vec<Arc<StoreSnapshot>> {
        self.shards.iter().map(|s| s.load()).collect()
    }

    /// Per-shard publish epochs (the union-staleness fingerprint).
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// The schema epoch all shards share. DDL broadcasts sequentially,
    /// so after any acked write the shards agree; between acks the max
    /// is the value plan caches must invalidate against.
    pub fn schema_epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.schema_epoch())
            .max()
            .unwrap_or(0)
    }

    /// Per-shard store sections (for per-shard labels in metrics output).
    pub fn shard_sections(&self) -> Vec<StoreSection> {
        self.shards
            .iter()
            .map(|s| {
                let mut sec = s.store_section();
                sec.attached = true;
                sec
            })
            .collect()
    }

    /// Route one write: broadcast DDL and `DELETE`, partition `INSERT`
    /// rows by the shard column. Returns an [`Applied`] whose message is
    /// recomposed to match the unsharded ack exactly (a `CREATE VIEW`
    /// ack's global row count is fixed up by the session layer, which
    /// owns the union state).
    pub fn apply_write(&self, op: WriteOp) -> Result<Applied, SessionError> {
        match op {
            WriteOp::CreateTable(_) | WriteOp::CreateView(_) => {
                let mut first: Option<Applied> = None;
                for s in self.shards.iter() {
                    let a = s.submit(op.clone())?;
                    first.get_or_insert(a);
                }
                Ok(first.expect("at least one shard"))
            }
            WriteOp::Insert(ins) => self.route_insert(ins),
            WriteOp::Delete(del) => {
                let mut rows = 0usize;
                let mut incremental: Option<usize> = None;
                for s in self.shards.iter() {
                    let a = s.submit(WriteOp::Delete(del.clone()))?;
                    rows += a.rows_affected;
                    // MIN/MAX deletes may recompute on the shard holding
                    // the group extremum and stay incremental elsewhere;
                    // report the conservative (minimum) count.
                    incremental = Some(
                        incremental.map_or(a.views_incremental, |m| m.min(a.views_incremental)),
                    );
                }
                let incremental = incremental.unwrap_or(0);
                Ok(Applied {
                    message: format!(
                        "{} row(s) deleted from `{}`; {incremental} view(s) maintained incrementally",
                        rows, del.table
                    ),
                    schema_change: false,
                    rows_affected: rows,
                    views_incremental: incremental,
                })
            }
        }
    }

    /// Partition an `INSERT`'s rows by the shard of their partition-key
    /// value and submit each non-empty subset to its shard.
    fn route_insert(&self, ins: Insert) -> Result<Applied, SessionError> {
        let snap = self.shards[0].load();
        let Some(schema) = snap.state.catalog.table(&ins.table) else {
            // Unknown table or a view: shard 0 produces the exact
            // unsharded error text.
            return self.shards[0].submit(WriteOp::Insert(ins));
        };
        // Validate every row before touching any shard, preserving the
        // unsharded all-or-nothing semantics of a bad INSERT.
        let arity = schema.arity();
        for row in &ins.rows {
            if row.len() != arity {
                return Err(err(format!(
                    "row arity {} does not match table `{}` arity {}",
                    row.len(),
                    ins.table,
                    arity
                )));
            }
        }
        let col = shard::shard_column(schema);
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Vec<Literal>>> = vec![Vec::new(); n];
        for row in &ins.rows {
            let v = lit_value(&row[col]);
            per_shard[shard::shard_of_value(&v, n)].push(row.clone());
        }
        let mut rows = 0usize;
        let mut incremental: Option<usize> = None;
        for (i, subset) in per_shard.into_iter().enumerate() {
            if subset.is_empty() {
                continue;
            }
            let a = self.shards[i].submit(WriteOp::Insert(Insert {
                table: ins.table.clone(),
                rows: subset,
            }))?;
            rows += a.rows_affected;
            // Insert maintenance decisions depend only on the shared
            // schema/view shapes, so any shard that received rows
            // reports the same count.
            incremental.get_or_insert(a.views_incremental);
        }
        let incremental = incremental.unwrap_or(0);
        Ok(Applied {
            message: format!(
                "{} row(s) inserted into `{}`; {incremental} view(s) maintained                      incrementally",
                rows, ins.table
            ),
            schema_change: false,
            rows_affected: rows,
            views_incremental: incremental,
        })
    }

    /// Aggregate writer counters across shards (the `-- store:` line of
    /// a sharded session: epochs are maxima, throughput counters sums).
    pub fn aggregate_section(&self) -> StoreSection {
        let mut agg = StoreSection {
            attached: true,
            ..StoreSection::default()
        };
        for s in self.shards.iter() {
            let stats = s.stats();
            agg.epoch = agg.epoch.max(s.epoch());
            agg.schema_epoch = agg.schema_epoch.max(s.schema_epoch());
            agg.publishes += stats.publishes.load(Ordering::Relaxed);
            agg.batches += stats.batches.load(Ordering::Relaxed);
            agg.batched_ops += stats.batched_ops.load(Ordering::Relaxed);
            agg.max_batch = agg.max_batch.max(stats.max_batch.load(Ordering::Relaxed));
        }
        agg
    }
}

/// The lazily maintained union of all shard snapshots: catalog and view
/// list from shard 0 (DDL broadcasts keep them identical), every base
/// table the concatenation of its shard partitions, every view
/// recomputed globally over that union. This is exactly the state an
/// unsharded store would hold, so metadata, plan caching, fallback
/// answers, and error messages all match the unsharded session byte for
/// byte.
#[derive(Debug, Default)]
pub struct UnionState {
    state: EngineState,
    /// The per-shard epoch vector the cached union was built from;
    /// `None` = dirty (never built, or invalidated by a write).
    built_from: Option<Vec<u64>>,
}

impl UnionState {
    /// An empty, dirty union.
    pub fn new() -> Self {
        UnionState::default()
    }

    /// The cached union (valid only after [`UnionState::ensure`]).
    pub fn state(&self) -> &EngineState {
        &self.state
    }

    /// Mark the union stale (after any routed write).
    pub fn invalidate(&mut self) {
        self.built_from = None;
    }

    /// Rebuild the union if any shard published since the last build.
    pub fn ensure(
        &mut self,
        store: &ShardedStore,
        metrics: Option<&Arc<MetricsRegistry>>,
    ) -> Result<&EngineState, SessionError> {
        let epochs = store.epochs();
        if self.built_from.as_ref() == Some(&epochs) {
            return Ok(&self.state);
        }
        let snaps = store.load_all();
        let policy = store.policy();
        let mut state = EngineState::new();
        if let Some(m) = metrics {
            state.db.set_metrics(Arc::clone(m));
        }
        state.catalog = snaps[0].state.catalog.clone();
        let names: Vec<String> = state.catalog.tables().map(|t| t.name.clone()).collect();
        for name in names {
            let mut rel = snaps[0]
                .state
                .db
                .get(&name)
                .map_err(|e| err(e.to_string()))?
                .clone();
            for snap in &snaps[1..] {
                let part = snap.state.db.get(&name).map_err(|e| err(e.to_string()))?;
                rel.rows.extend(part.rows.iter().cloned());
            }
            state.db.insert(name, rel);
        }
        // Views recompute globally, in definition order (views over
        // views see their dependencies already unioned).
        for view in snaps[0].state.views.iter() {
            let mut rel = execute_with(&view.query, &state.db, policy.columnar)
                .map_err(|e| err(format!("view `{}`: {e}", view.name)))?;
            rel.columns = view.output_names();
            state.db.insert(view.name.clone(), rel);
            if policy.index_views {
                if let Some(key_cols) = state.view_index_key(view) {
                    let idx = GroupIndex::build(
                        state.db.get(&view.name).map_err(|e| err(e.to_string()))?,
                        key_cols,
                    );
                    state.db.set_index(view.name.clone(), idx);
                }
            }
            state.views.push(view.clone());
        }
        self.state = state;
        self.built_from = Some(epochs);
        Ok(&self.state)
    }
}

/// The column name under which `relation` exposes its base table's
/// shard column, if it does: the shard column itself for a base table;
/// for a view, recursively, the exposed grouping column over the inner
/// relation's shard column. A view that does not group by (and project)
/// its source's shard column returns `None` — its per-shard contents
/// are not a partition of its global contents, so neither concat nor
/// re-aggregation over it is sound and the planner falls back.
pub fn shard_exposed_column(state: &EngineState, relation: &str) -> Option<String> {
    if let Some(schema) = state.catalog.table(relation) {
        return Some(schema.columns[shard::shard_column(schema)].name.clone());
    }
    let view = state.views.iter().find(|v| v.name == relation)?;
    let q = &view.query;
    if q.from.len() != 1 {
        return None;
    }
    let inner = shard_exposed_column(state, &q.from[0].table)?;
    let grouped = q
        .group_by
        .iter()
        .any(|c| shard::refers_to(c, &q.from[0], &inner));
    if !grouped {
        return None;
    }
    let names = view.output_names();
    q.select.iter().enumerate().find_map(|(i, item)| {
        if let aggview_sql::ast::Expr::Column(c) = &item.expr {
            if shard::refers_to(c, &q.from[0], &inner) {
                return Some(names[i].clone());
            }
        }
        None
    })
}

/// Gather-plan a query against the union's catalog and views.
pub fn gather_plan(state: &EngineState, q: &Query) -> GatherPlan {
    shard::plan_gather(q, &|relation| shard_exposed_column(state, relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_statement;
    use aggview_sql::Statement;

    fn op(sql: &str) -> WriteOp {
        match parse_statement(sql).expect("parses") {
            Statement::CreateTable(ct) => WriteOp::CreateTable(ct),
            Statement::CreateView(cv) => WriteOp::CreateView(cv),
            Statement::Insert(ins) => WriteOp::Insert(ins),
            Statement::Delete(del) => WriteOp::Delete(del),
            _ => panic!("not a write"),
        }
    }

    #[test]
    fn ddl_broadcasts_and_inserts_partition() {
        let store = ShardedStore::with_defaults(2);
        store
            .apply_write(op("CREATE TABLE S (A, B, KEY (A))"))
            .expect("create");
        let a = store
            .apply_write(op(
                "INSERT INTO S VALUES (1, 10), (2, 20), (3, 30), (4, 40)",
            ))
            .expect("insert");
        assert_eq!(a.rows_affected, 4);
        assert!(a.message.starts_with("4 row(s) inserted into `S`"));
        let snaps = store.load_all();
        let total: usize = snaps
            .iter()
            .map(|s| s.state.db.get("S").expect("table").len())
            .sum();
        assert_eq!(total, 4, "every row lands on exactly one shard");
        // Both shards saw the DDL.
        for snap in &snaps {
            assert!(snap.state.catalog.table("S").is_some());
        }
        // Same-key rows colocate: rows with A=1 all on one shard.
        store
            .apply_write(op("INSERT INTO S VALUES (1, 11)"))
            .expect("insert");
        let snaps = store.load_all();
        let with_a1: Vec<usize> = snaps
            .iter()
            .map(|s| {
                s.state
                    .db
                    .get("S")
                    .expect("table")
                    .rows
                    .iter()
                    .filter(|r| r[0] == aggview_engine::Value::Int(1))
                    .count()
            })
            .collect();
        assert!(
            with_a1.contains(&2) && with_a1.iter().sum::<usize>() == 2,
            "twin keys colocate: {with_a1:?}"
        );
    }

    #[test]
    fn bad_insert_applies_nothing_anywhere() {
        let store = ShardedStore::with_defaults(2);
        store
            .apply_write(op("CREATE TABLE S (A, B)"))
            .expect("create");
        let e = store
            .apply_write(op("INSERT INTO S VALUES (1, 2), (3, 4, 5)"))
            .expect_err("arity mismatch");
        assert_eq!(e.0, "row arity 3 does not match table `S` arity 2");
        for snap in store.load_all() {
            assert_eq!(snap.state.db.get("S").expect("table").len(), 0);
        }
    }

    #[test]
    fn delete_broadcasts_and_sums_matches() {
        let store = ShardedStore::with_defaults(3);
        store
            .apply_write(op("CREATE TABLE S (A, B)"))
            .expect("create");
        store
            .apply_write(op(
                "INSERT INTO S VALUES (1, 1), (2, 1), (3, 2), (4, 1), (5, 1)",
            ))
            .expect("insert");
        let a = store
            .apply_write(op("DELETE FROM S WHERE B = 1"))
            .expect("delete");
        assert_eq!(a.rows_affected, 4);
        assert!(a.message.starts_with("4 row(s) deleted from `S`"));
    }

    #[test]
    fn union_concatenates_partitions_and_recomputes_views() {
        let store = ShardedStore::with_defaults(2);
        store
            .apply_write(op("CREATE TABLE S (A, B, KEY (A))"))
            .expect("create");
        store
            .apply_write(op("INSERT INTO S VALUES (1, 10), (2, 20), (3, 30)"))
            .expect("insert");
        store
            .apply_write(op(
                "CREATE VIEW V AS SELECT B, SUM(A) AS T FROM S GROUP BY B",
            ))
            .expect("view");
        let mut union = UnionState::new();
        let state = union.ensure(&store, None).expect("union builds");
        assert_eq!(state.db.get("S").expect("S").len(), 3);
        assert_eq!(state.db.get("V").expect("V").len(), 3);
        // Cached until a shard publishes.
        let epochs = store.epochs();
        union.ensure(&store, None).expect("cached");
        assert_eq!(store.epochs(), epochs);
    }

    #[test]
    fn views_grouped_on_the_shard_key_stay_aligned() {
        let store = ShardedStore::with_defaults(2);
        store
            .apply_write(op("CREATE TABLE S (A, B, KEY (A))"))
            .expect("create");
        store
            .apply_write(op(
                "CREATE VIEW ByA AS SELECT A, SUM(B) AS T FROM S GROUP BY A",
            ))
            .expect("aligned view");
        store
            .apply_write(op(
                "CREATE VIEW ByB AS SELECT B, SUM(A) AS T FROM S GROUP BY B",
            ))
            .expect("unaligned view");
        let mut union = UnionState::new();
        let state = union.ensure(&store, None).expect("union");
        assert_eq!(shard_exposed_column(state, "S").as_deref(), Some("A"));
        assert_eq!(shard_exposed_column(state, "ByA").as_deref(), Some("A"));
        assert_eq!(shard_exposed_column(state, "ByB"), None);
        assert_eq!(shard_exposed_column(state, "Nope"), None);
    }
}
