//! The executable engine state behind a session or a shared store: the
//! catalog, the database instance (base tables, materialized views, and
//! their group indexes), and the view definitions.
//!
//! [`EngineState`] owns the *write* paths — `CREATE TABLE`, `CREATE
//! VIEW`, `INSERT`, `DELETE`, and the view-maintenance fan-out — exactly
//! as the single-owner `Session` always ran them. A local session mutates
//! its private state directly; the shared store's single writer thread
//! mutates one master copy and publishes immutable clones, so both
//! serving modes share one implementation of every statement's
//! semantics.

use crate::session::{err, SessionError};
use aggview_catalog::{Catalog, TableSchema};
use aggview_core::{Canonical, TableStats, ViewDef};
use aggview_engine::maintenance::{maintain_view_with, plan_for_view, DeltaKind, MaintenancePlan};
use aggview_engine::{execute_with, Database, GroupIndex, Relation, Value};
use aggview_sql::{CreateTable, CreateView, Delete, Insert, Query};

/// Catalog + database + view definitions: everything a statement needs.
///
/// `Clone` is the snapshot operation: the shared store's writer clones
/// the master state (relations, indexes, catalog, view list) into each
/// published [`crate::server::StoreSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// Base-table schemas (keys included).
    pub catalog: Catalog,
    /// Stored relations: base tables and materialized views, with any
    /// group indexes attached.
    pub db: Database,
    /// Materialized view definitions, in creation order.
    pub views: Vec<ViewDef>,
}

/// Which maintenance policies the write paths follow — the write-side
/// slice of `SessionOptions`. A store fixes one policy for all handles
/// (the materialized state is shared); a local session derives it from
/// its own options.
#[derive(Debug, Clone, Copy)]
pub struct WritePolicy {
    /// Attach a [`GroupIndex`] on the exposed grouping columns of every
    /// materialized `GROUP BY` view.
    pub index_views: bool,
    /// Refresh dependent views by full recomputation instead of the
    /// incremental delta path.
    pub recompute_views: bool,
    /// Let write-path query execution (view materialization, DELETE row
    /// matching, recomputation fallbacks) use the vectorized columnar
    /// operators. Off forces the row-at-a-time interpreter everywhere.
    pub columnar: bool,
}

impl Default for WritePolicy {
    fn default() -> Self {
        WritePolicy {
            index_views: true,
            recompute_views: false,
            columnar: true,
        }
    }
}

/// The effect of one applied write statement.
#[derive(Debug, Clone)]
pub struct Applied {
    /// Human-readable acknowledgement (what `StatementOutcome::Ok` shows).
    pub message: String,
    /// Did the statement change the schema universe (`CREATE TABLE` /
    /// `CREATE VIEW`)? Schema changes bump the plan-cache epoch.
    pub schema_change: bool,
    /// Rows affected: inserted rows, deleted rows, or the materialized
    /// row count of a new view (0 for `CREATE TABLE`). The sharded
    /// router sums these across shards to recompose the global ack.
    pub rows_affected: usize,
    /// How many dependent views took the incremental maintenance path
    /// (0 for DDL).
    pub views_incremental: usize,
}

impl EngineState {
    /// An empty state.
    pub fn new() -> Self {
        EngineState::default()
    }

    /// Live cardinalities of every stored relation (cost ranking input).
    pub fn table_stats(&self) -> TableStats {
        let mut stats = TableStats::new();
        for (name, rel) in self.db.iter() {
            stats.set(name.clone(), rel.len());
        }
        stats
    }

    /// Apply `CREATE TABLE`.
    pub fn create_table(&mut self, ct: &CreateTable) -> Result<Applied, SessionError> {
        let mut schema = TableSchema::new(ct.name.clone(), ct.columns.clone());
        for key in &ct.keys {
            schema = schema.with_key(key.iter().map(|s| s.as_str()));
        }
        self.catalog
            .add_table(schema)
            .map_err(|e| err(e.to_string()))?;
        self.db
            .insert(ct.name.clone(), Relation::empty(ct.columns.clone()));
        Ok(Applied {
            message: format!(
                "table `{}` created ({} columns, {} key(s))",
                ct.name,
                ct.columns.len(),
                ct.keys.len()
            ),
            schema_change: true,
            rows_affected: 0,
            views_incremental: 0,
        })
    }

    /// Apply `CREATE VIEW`: register and materialize.
    pub fn create_view(
        &mut self,
        cv: &CreateView,
        policy: WritePolicy,
    ) -> Result<Applied, SessionError> {
        if self.catalog.table(&cv.name).is_some() || self.views.iter().any(|v| v.name == cv.name) {
            return Err(err(format!("relation `{}` already exists", cv.name)));
        }
        let view = ViewDef::new(cv.name.clone(), cv.query.clone());
        let mut rel = execute_with(&view.query, &self.db, policy.columnar)
            .map_err(|e| err(format!("view `{}`: {e}", cv.name)))?;
        rel.columns = view.output_names();
        let n = rel.len();
        self.db.insert(view.name.clone(), rel);
        if policy.index_views {
            if let Some(key_cols) = self.view_index_key(&view) {
                let idx = GroupIndex::build(
                    self.db.get(&view.name).map_err(|e| err(e.to_string()))?,
                    key_cols,
                );
                self.db.set_index(view.name.clone(), idx);
            }
        }
        self.views.push(view);
        Ok(Applied {
            message: format!("view `{}` materialized ({n} rows)", cv.name),
            schema_change: true,
            rows_affected: n,
            views_incremental: 0,
        })
    }

    /// Apply `INSERT`, maintaining dependent views.
    pub fn insert(&mut self, ins: &Insert, policy: WritePolicy) -> Result<Applied, SessionError> {
        let rel = self
            .db
            .get(&ins.table)
            .map_err(|e| err(e.to_string()))?
            .clone();
        if self.catalog.table(&ins.table).is_none() {
            return Err(err(format!(
                "`{}` is a view; INSERT into base tables only",
                ins.table
            )));
        }
        let mut rel = rel;
        let mut delta: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
        for row in &ins.rows {
            if row.len() != rel.arity() {
                return Err(err(format!(
                    "row arity {} does not match table `{}` arity {}",
                    row.len(),
                    ins.table,
                    rel.arity()
                )));
            }
            let values: Vec<Value> = row.iter().map(aggview_engine::value::lit_value).collect();
            rel.push(values.clone());
            delta.push(values);
        }
        self.db.insert(ins.table.clone(), rel);
        let incremental = self.maintain_views(&ins.table, DeltaKind::Insert(&delta), policy)?;
        Ok(Applied {
            message: format!(
                "{} row(s) inserted into `{}`; {incremental} view(s) maintained                      incrementally",
                ins.rows.len(),
                ins.table
            ),
            schema_change: false,
            rows_affected: ins.rows.len(),
            views_incremental: incremental,
        })
    }

    /// Apply `DELETE`, maintaining dependent views.
    pub fn delete(&mut self, del: &Delete, policy: WritePolicy) -> Result<Applied, SessionError> {
        if self.catalog.table(&del.table).is_none() {
            return Err(err(format!(
                "`{}` is not a base table; DELETE applies to base tables only",
                del.table
            )));
        }
        // Partition the rows by the filter, using the engine's own
        // predicate semantics (SELECT * ... WHERE filter).
        let all_cols = self
            .db
            .get(&del.table)
            .map_err(|e| err(e.to_string()))?
            .columns
            .clone();
        let matching = {
            let q = Query {
                distinct: false,
                select: all_cols
                    .iter()
                    .map(|c| {
                        aggview_sql::ast::SelectItem::expr(aggview_sql::ast::Expr::col(c.clone()))
                    })
                    .collect(),
                from: vec![aggview_sql::ast::TableRef::new(del.table.clone())],
                where_clause: del.filter.clone(),
                group_by: Vec::new(),
                having: None,
            };
            execute_with(&q, &self.db, policy.columnar).map_err(|e| err(e.to_string()))?
        };
        // Remove exactly the matching multiset from the base table.
        let mut remaining = self
            .db
            .get(&del.table)
            .map_err(|e| err(e.to_string()))?
            .clone();
        let mut budget: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        for r in &matching.rows {
            *budget.entry(r.clone()).or_insert(0) += 1;
        }
        remaining.rows.retain(|r| match budget.get_mut(r) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        });
        self.db.insert(del.table.clone(), remaining);
        let incremental =
            self.maintain_views(&del.table, DeltaKind::Delete(&matching.rows), policy)?;
        Ok(Applied {
            message: format!(
                "{} row(s) deleted from `{}`; {incremental} view(s) maintained incrementally",
                matching.len(),
                del.table
            ),
            schema_change: false,
            rows_affected: matching.len(),
            views_incremental: incremental,
        })
    }

    /// The [`GroupIndex`] key columns for a materialized view: aligned
    /// with the incremental-maintenance plan when one exists (so the same
    /// index serves maintenance lookups), else the exposed grouping
    /// columns of any other `GROUP BY` view; `None` for ungrouped views.
    pub fn view_index_key(&self, view: &ViewDef) -> Option<Vec<usize>> {
        if let MaintenancePlan::Incremental(plan) = plan_for_view(&view.query, &self.db) {
            return Some(plan.index_key_cols().to_vec());
        }
        if view.query.group_by.is_empty() {
            return None;
        }
        let canon = Canonical::from_query(&view.query, &self.db).ok()?;
        let key: Vec<usize> = canon
            .select
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                aggview_core::SelItem::Col(c) if canon.groups.contains(c) => Some(i),
                _ => None,
            })
            .collect();
        (!key.is_empty()).then_some(key)
    }

    /// Maintain every view after `delta` was applied to `changed_table`:
    /// incrementally where the plan allows, by recomputation otherwise.
    /// Views over views are handled by propagating the set of changed
    /// relations through the (topologically ordered) definition list;
    /// their deltas are not tracked, so they recompute. Returns how many
    /// views took the incremental path.
    fn maintain_views(
        &mut self,
        changed_table: &str,
        delta: DeltaKind<'_>,
        policy: WritePolicy,
    ) -> Result<usize, SessionError> {
        let mut changed: Vec<String> = vec![changed_table.to_string()];
        let mut incremental = 0usize;
        let mut touched = 0usize;
        let maintain_clock = self.db.metrics().cloned().map(|m| {
            let start = m.now_ns();
            (m, start)
        });
        for v in &self.views {
            if !v.query.from.iter().any(|t| changed.contains(&t.table)) {
                continue;
            }
            touched += 1;
            let mut rel = self
                .db
                .get(&v.name)
                .map_err(|e| err(e.to_string()))?
                .clone();
            let direct_only = !policy.recompute_views
                && v.query.from.len() == 1
                && v.query.from[0].table == changed_table;
            // Detach the view's group index (dropped by `db.insert`
            // otherwise), maintain it alongside the rows, and re-attach.
            let mut idx = self.db.take_index(&v.name);
            let took_incremental = if direct_only {
                maintain_view_with(
                    &v.query,
                    &mut rel,
                    changed_table,
                    delta,
                    &self.db,
                    idx.as_mut(),
                    policy.columnar,
                )
                .map_err(|e| err(format!("maintaining `{}`: {e}", v.name)))?
            } else {
                let mut fresh = execute_with(&v.query, &self.db, policy.columnar)
                    .map_err(|e| err(format!("refreshing `{}`: {e}", v.name)))?;
                fresh.columns = v.output_names();
                rel = fresh;
                if let Some(i) = idx.as_mut() {
                    i.rebuild(&rel);
                }
                false
            };
            incremental += took_incremental as usize;
            self.db.record(
                if took_incremental {
                    aggview_obs::CounterId::MaintainIncremental
                } else {
                    aggview_obs::CounterId::MaintainRecompute
                },
                1,
            );
            self.db.insert(v.name.clone(), rel);
            if let Some(i) = idx {
                self.db.set_index(v.name.clone(), i);
            }
            changed.push(v.name.clone());
        }
        if touched > 0 {
            if let Some((m, start)) = maintain_clock {
                m.observe_ns(
                    aggview_obs::Stage::Maintain,
                    m.now_ns().saturating_sub(start),
                );
            }
        }
        Ok(incremental)
    }
}
