//! Gluing the rewriter to the execution engine: materializing views,
//! executing rewritings (auxiliary views first), and validating
//! multiset-equivalence — the paper's correctness criterion.

use aggview_core::expand::NAT_TABLE;
use aggview_core::{Rewriter, Rewriting, ViewDef};
use aggview_engine::datagen::nat_table;
use aggview_engine::{
    execute, execute_with, multiset_eq, set_eq, Database, EngineResult, Relation, Value,
};
use aggview_sql::Query;

/// Materialize each view into `db` under its name, in definition order
/// (later views may reference earlier ones).
pub fn materialize_views(db: &mut Database, views: &[ViewDef]) -> EngineResult<()> {
    for v in views {
        let rel = materialize_view(db, v)?;
        db.insert(v.name.clone(), rel);
    }
    Ok(())
}

/// Evaluate one view definition against `db` and name its output columns
/// per [`Query::output_names`].
fn materialize_view(db: &Database, view: &ViewDef) -> EngineResult<Relation> {
    let mut rel = execute(&view.query, db)?;
    rel.columns = view.output_names();
    Ok(rel)
}

/// Execute a rewriting: materialize its auxiliary views (`V^a`) into a
/// scratch copy of `db`, provide the `Nat` table when the rewriting needs
/// it (footnote 3), then run the rewritten query.
///
/// `db` must already contain the materialized views the rewriting uses.
pub fn execute_rewriting(rw: &Rewriting, db: &Database) -> EngineResult<Relation> {
    execute_rewriting_with(rw, db, true)
}

/// [`execute_rewriting`] with an explicit columnar-execution switch (the
/// auxiliary views are still materialized through the default path — their
/// contents are path-independent by construction).
pub fn execute_rewriting_with(
    rw: &Rewriting,
    db: &Database,
    columnar: bool,
) -> EngineResult<Relation> {
    if rw.aux_views.is_empty() && !rw.requires_nat {
        return execute_with(&rw.query, db, columnar);
    }
    let mut scratch = db.clone();
    materialize_views(&mut scratch, &rw.aux_views)?;
    if rw.requires_nat && !scratch.contains(NAT_TABLE) {
        ensure_nat(&mut scratch);
    }
    execute_with(&rw.query, &scratch, columnar)
}

/// Insert the interpreted `Nat` table (footnote 3), sized to the largest
/// integer appearing anywhere in the database (so every `Nat.k <= count`
/// join is fully covered). Call before executing a rewriting with
/// [`Rewriting::requires_nat`] set — [`execute_rewriting`] does it
/// automatically when the table is absent.
pub fn ensure_nat(db: &mut Database) {
    let mut max = 1i64;
    for (name, rel) in db.iter() {
        if name == NAT_TABLE {
            continue;
        }
        for row in &rel.rows {
            for v in row {
                if let Value::Int(x) = v {
                    max = max.max(*x);
                }
            }
        }
    }
    db.insert(NAT_TABLE, nat_table(max));
}

/// Is the rewriting equivalent to the original query on this database?
///
/// Multiset equality in general; set equality for Section 5 rewritings
/// (whose guarantee is set-equivalence of provably-set results).
pub fn rewriting_equivalent(query: &Query, rw: &Rewriting, db: &Database) -> EngineResult<bool> {
    let original = execute(query, db)?;
    let rewritten = execute_rewriting(rw, db)?;
    Ok(if rw.set_semantics {
        set_eq(&original, &rewritten)
    } else {
        multiset_eq(&original, &rewritten)
    })
}

/// Convenience: rewrite `query` with `rewriter` and `views`, and verify
/// every produced rewriting against `db` (which must hold the base
/// tables; the views are materialized into a scratch copy here). Returns
/// the verified rewritings; panics on an inequivalent one — this is the
/// harness the property tests and the `repro` experiments build on.
pub fn rewrite_and_verify(
    rewriter: &Rewriter<'_>,
    query: &Query,
    views: &[ViewDef],
    db: &Database,
) -> Vec<Rewriting> {
    let rewritings = rewriter
        .rewrite(query, views)
        .expect("query and views must canonicalize");
    let mut scratch = db.clone();
    materialize_views(&mut scratch, views).expect("views must evaluate");
    for rw in &rewritings {
        let ok = rewriting_equivalent(query, rw, &scratch)
            .unwrap_or_else(|e| panic!("rewriting failed to execute: {e}\n  {}", rw.query));
        assert!(
            ok,
            "rewriting is NOT equivalent to the query\n  query: {query}\n  rewriting: {}\n  \
             views used: {:?}",
            rw.query, rw.views_used
        );
    }
    rewritings
}
