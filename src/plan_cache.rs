//! The serving-path rewrite-plan cache.
//!
//! Repeated dashboard-style queries pay the same costs on every arrival:
//! canonicalization, the multi-view rewrite search, cost ranking, and
//! physical planning. This module caches the outcome of all four behind a
//! *canonical* key, so textually different but canonically identical
//! queries (swapped conjuncts, flipped comparisons, renamed bindings)
//! share one entry.
//!
//! ## Keys and collisions
//!
//! The cache key is the **full normalized canonical form**
//! ([`Canonical::normalized`]) plus the query's output column names — not
//! a hash of it. Lookups go through a `HashMap`, whose equality check
//! compares the entire key, so a 64-bit fingerprint collision can never
//! alias two different queries to one entry; the
//! [`Canonical::fingerprint`] is carried for display only.
//!
//! ## Staleness
//!
//! Entries are compiled against the session's relation *schemas* and its
//! set of views. A schema event (`CREATE TABLE`, `CREATE VIEW`) bumps the
//! cache epoch: a later lookup of an older-epoch entry drops it, counts an
//! invalidation, and falls back to the full search (a new view may enable
//! a better rewriting). Data events (`INSERT`, `DELETE`, view maintenance)
//! do **not** invalidate: a [`PhysicalPlan`] binds relations by *name* at
//! run time, join order is chosen per run from live cardinalities, and
//! view maintenance keeps materialized contents fresh — so a cached plan
//! stays correct across writes and only its cost *ranking* can drift
//! (re-ranked on the next recompilation). `tests/session_fuzz.rs` checks
//! cached and uncached sessions agree across interleaved reads and writes.

use aggview_core::{Canonical, RewriteStats, Rewriting};
use aggview_engine::PhysicalPlan;
use std::collections::HashMap;

/// Default number of cached plans per session.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// Cache key: the full normalized canonical form of the query plus its
/// output column names (aliases never reach the canonical form, but they
/// do name the result columns).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canon: Canonical,
    output_names: Vec<String>,
}

impl CacheKey {
    /// Build a key from an already-canonicalized query. Callers pass the
    /// raw canonical form; normalization happens here.
    pub fn new(canon: &Canonical, output_names: Vec<String>) -> Self {
        CacheKey {
            canon: canon.normalized(),
            output_names,
        }
    }

    /// Display fingerprint of the canonical form.
    pub fn fingerprint(&self) -> u64 {
        // Already normalized, so this hashes the stored form directly.
        self.canon.fingerprint()
    }
}

/// The answer metadata a session reports alongside a served relation.
#[derive(Debug, Clone, Default)]
pub struct AnswerMeta {
    /// The executed SQL text (for reporting).
    pub executed: String,
    /// Views used by the chosen rewriting.
    pub views_used: Vec<String>,
    /// Number of candidate rewritings the original search produced.
    pub candidates: usize,
    /// The chosen rewriting is equivalent under set semantics only (§5).
    pub set_semantics: bool,
}

/// A cached serving decision: the chosen rewriting (if any), the compiled
/// physical plan (when the executed query is a single block over stored
/// relations), and the answer metadata the session reports.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The rewriting the search chose; `None` = answer from base tables.
    pub rewriting: Option<Rewriting>,
    /// Compiled plan for the executed query. `None` when execution needs
    /// the auxiliary-view / `Nat` scaffolding path (the search is still
    /// skipped; execution falls back to the rewriting interpreter).
    pub plan: Option<PhysicalPlan>,
    /// The answer metadata the session reports on a hit.
    pub meta: AnswerMeta,
    /// Display fingerprint of the canonical key.
    pub fingerprint: u64,
    /// The search stats recorded when the entry was built.
    pub search: RewriteStats,
    epoch: u64,
    last_used: u64,
}

/// A bounded, epoch-validated map from canonical queries to serving plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: HashMap<CacheKey, CachedPlan>,
    cap: usize,
    epoch: u64,
    external_epoch: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PlanCache {
    /// A cache holding at most `cap` plans (`0` disables caching).
    pub fn with_cap(cap: usize) -> Self {
        PlanCache {
            cap,
            ..PlanCache::default()
        }
    }

    /// Record a schema event (`CREATE TABLE` / `CREATE VIEW`): existing
    /// entries were planned against an older universe of relations and
    /// views, and are invalidated lazily on their next lookup.
    pub fn note_schema_change(&mut self) {
        self.epoch += 1;
    }

    /// Align with an external schema epoch (the shared store's): when the
    /// store-published epoch has moved since the last sync, every cached
    /// plan was compiled against an older catalog universe and is
    /// invalidated lazily, exactly as [`PlanCache::note_schema_change`].
    /// Store-backed sessions call this before every lookup/store, so a
    /// DDL statement from *any* handle invalidates *every* handle's
    /// cached plans.
    pub fn sync_epoch(&mut self, external: u64) {
        if self.external_epoch != external {
            self.external_epoch = external;
            self.epoch += 1;
        }
    }

    /// Look up a serving plan. Counts a hit, a miss, or an invalidation
    /// (stale epoch: the entry is dropped and the miss is reported so the
    /// caller re-runs the search). Returns a reference — the hit path must
    /// not pay a plan clone.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<&CachedPlan> {
        if self.cap == 0 {
            self.misses += 1;
            return None;
        }
        let fresh = match self.entries.get(key) {
            Some(entry) => entry.epoch == self.epoch,
            None => {
                self.misses += 1;
                return None;
            }
        };
        if !fresh {
            self.entries.remove(key);
            self.invalidations += 1;
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        self.hits += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key).expect("checked above");
        entry.last_used = tick;
        Some(entry)
    }

    /// Is `key` currently cached and valid? (No counter side effects —
    /// used by `EXPLAIN`.)
    pub fn peek(&self, key: &CacheKey) -> bool {
        self.entries.get(key).is_some_and(|e| e.epoch == self.epoch)
    }

    /// Store a serving plan, evicting the least-recently-used entry when
    /// the cache is full.
    pub fn store(
        &mut self,
        key: CacheKey,
        rewriting: Option<Rewriting>,
        plan: Option<PhysicalPlan>,
        meta: AnswerMeta,
        search: RewriteStats,
    ) {
        if self.cap == 0 {
            return;
        }
        if self.entries.len() >= self.cap && !self.entries.contains_key(&key) {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.tick += 1;
        let fingerprint = key.fingerprint();
        self.entries.insert(
            key,
            CachedPlan {
                rewriting,
                plan,
                meta,
                fingerprint,
                search,
                epoch: self.epoch,
                last_used: self.tick,
            },
        );
    }

    /// Copy the session-cumulative counters into a stats record (shown by
    /// the REPL's `:stats` and by `EXPLAIN`).
    pub fn fill_stats(&self, stats: &mut RewriteStats) {
        stats.plan_cache_hits = self.hits;
        stats.plan_cache_misses = self.misses;
        stats.plan_cache_invalidations = self.invalidations;
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Session-cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Session-cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Session-cumulative invalidations.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Current schema epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_catalog::{Catalog, TableSchema};
    use aggview_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new("T", ["a", "b", "c"]))
            .unwrap();
        cat
    }

    fn key(sql: &str) -> CacheKey {
        let q = parse_query(sql).unwrap();
        let canon = Canonical::from_query(&q, &catalog()).unwrap();
        CacheKey::new(&canon, q.output_names())
    }

    #[test]
    fn canonically_identical_queries_share_a_key() {
        let a = key("SELECT a, SUM(b) FROM T WHERE c = 1 AND b > 2 GROUP BY a");
        let b = key("SELECT x.a, SUM(x.b) FROM T x WHERE 2 < x.b AND 1 = x.c GROUP BY x.a");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn aliases_on_output_columns_split_keys() {
        // Same canonical body, different result column names: must not
        // share a plan (the cached relation headers would be wrong).
        let a = key("SELECT a, SUM(b) AS total FROM T GROUP BY a");
        let b = key("SELECT a, SUM(b) AS s FROM T GROUP BY a");
        assert_ne!(a, b);
    }

    #[test]
    fn epoch_invalidates_lazily() {
        let mut cache = PlanCache::with_cap(8);
        let k = key("SELECT a FROM T");
        cache.store(
            k.clone(),
            None,
            None,
            AnswerMeta::default(),
            RewriteStats::default(),
        );
        assert!(cache.lookup(&k).is_some());
        assert_eq!(cache.hits(), 1);

        cache.note_schema_change();
        assert!(!cache.peek(&k));
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 0, "stale entry dropped");
    }

    #[test]
    fn lru_eviction_at_cap() {
        let mut cache = PlanCache::with_cap(2);
        let k1 = key("SELECT a FROM T");
        let k2 = key("SELECT b FROM T");
        let k3 = key("SELECT c FROM T");
        for k in [&k1, &k2] {
            cache.store(
                k.clone(),
                None,
                None,
                AnswerMeta::default(),
                RewriteStats::default(),
            );
        }
        // Touch k1 so k2 is the LRU victim.
        assert!(cache.lookup(&k1).is_some());
        cache.store(
            k3.clone(),
            None,
            None,
            AnswerMeta::default(),
            RewriteStats::default(),
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&k1));
        assert!(!cache.peek(&k2));
        assert!(cache.peek(&k3));
    }

    #[test]
    fn external_epoch_sync_invalidates_lazily() {
        let mut cache = PlanCache::with_cap(8);
        let k = key("SELECT a FROM T");
        cache.sync_epoch(0);
        cache.store(
            k.clone(),
            None,
            None,
            AnswerMeta::default(),
            RewriteStats::default(),
        );
        // Unchanged external epoch: still a hit.
        cache.sync_epoch(0);
        assert!(cache.lookup(&k).is_some());
        // The store published a DDL: the entry must drop on next lookup.
        cache.sync_epoch(1);
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.invalidations(), 1);
        // Re-syncing the same external epoch does not churn the cache.
        cache.store(
            k.clone(),
            None,
            None,
            AnswerMeta::default(),
            RewriteStats::default(),
        );
        cache.sync_epoch(1);
        assert!(cache.lookup(&k).is_some());
    }

    #[test]
    fn zero_cap_disables_caching() {
        let mut cache = PlanCache::with_cap(0);
        let k = key("SELECT a FROM T");
        cache.store(
            k.clone(),
            None,
            None,
            AnswerMeta::default(),
            RewriteStats::default(),
        );
        assert!(cache.lookup(&k).is_none());
        assert!(cache.is_empty());
    }
}
