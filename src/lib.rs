//! # aggview — Answering SQL Aggregation Queries Using Materialized Views
//!
//! A production-quality Rust implementation of *"Reasoning with Aggregation
//! Constraints in Views"* (Shaul Dar, H. V. Jagadish, Alon Y. Levy, Divesh
//! Srivastava; AT&T Bell Laboratories, 1996 — published as *"Answering
//! Queries with Aggregation Using Views"*, VLDB 1996).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`sql`] — the SQL dialect: lexer, parser, AST, pretty-printer.
//! * [`catalog`] — schemas, keys, functional dependencies, set-ness
//!   inference (Section 5 of the paper).
//! * [`engine`] — an in-memory multiset (bag) semantics execution engine
//!   used to materialize views, run queries, and decide multiset equality.
//! * [`obs`] — the unified observability layer: metrics registry, log₂
//!   latency histograms per pipeline stage, slow-query ring buffer, and
//!   human/Prometheus rendering of one `ObsSnapshot`.
//! * [`rewrite`] — the paper's contribution: usability conditions C1–C4 /
//!   C2'–C4' and the rewriting algorithms S1–S4 / S1'–S5', multi-view
//!   iteration, HAVING normalization, and set-semantics mode.
//!
//! ## Quickstart
//!
//! ```
//! use aggview::sql::parse_query;
//! use aggview::catalog::{Catalog, TableSchema};
//! use aggview::rewrite::{Rewriter, ViewDef};
//!
//! // Schema: a tiny warehouse.
//! let mut catalog = Catalog::new();
//! catalog
//!     .add_table(TableSchema::new("Sales", ["Region", "Product", "Amount"]))
//!     .unwrap();
//!
//! // A materialized view with grouping and aggregation.
//! let view = ViewDef::new(
//!     "RegionTotals",
//!     parse_query(
//!         "SELECT Region, Product, SUM(Amount), COUNT(Amount) \
//!          FROM Sales GROUP BY Region, Product",
//!     )
//!     .unwrap(),
//! );
//!
//! // A query that can be answered from the view alone.
//! let query = parse_query(
//!     "SELECT Region, SUM(Amount) FROM Sales GROUP BY Region",
//! )
//! .unwrap();
//!
//! let rewriter = Rewriter::new(&catalog);
//! let rewritings = rewriter.rewrite(&query, std::slice::from_ref(&view)).unwrap();
//! assert!(!rewritings.is_empty());
//! // The rewriting reads only the (much smaller) view:
//! assert_eq!(rewritings[0].query.from.len(), 1);
//! assert_eq!(rewritings[0].query.from[0].table, "RegionTotals");
//! ```

pub mod gen;
pub mod plan_cache;
pub mod run;
pub mod server;
pub mod session;
pub mod sharded;
pub mod state;

pub use aggview_catalog as catalog;
pub use aggview_core as rewrite;
pub use aggview_engine as engine;
pub use aggview_obs as obs;
pub use aggview_sql as sql;
