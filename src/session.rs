//! A scriptable session: the state machine behind the `aggview` CLI.
//!
//! A session executes [`Statement`]s against an [`EngineState`] — a
//! catalog, a database instance, and the materialized views defined so
//! far:
//!
//! * `CREATE TABLE` registers the schema (with keys) and an empty relation,
//! * `CREATE VIEW` registers and *materializes* the view,
//! * `INSERT` appends literal rows (and refreshes dependent views),
//! * `SELECT` rewrites the query against the known views, picks the
//!   cheapest usable rewriting by actual cardinalities, executes it, and
//!   (optionally) cross-checks the answer against base-table evaluation,
//! * `EXPLAIN SELECT` reports, per view and mapping, the produced
//!   rewriting or the violated usability condition.
//!
//! A session comes in two backends with identical statement semantics:
//!
//! * **Local** ([`Session::new`]): the session owns its state; writes
//!   mutate it in place. This is the classic single-owner CLI mode.
//! * **Shared** ([`Session::on_store`] / `SharedStore::session`): the
//!   session is a handle on a [`crate::server::SharedStore`]. Reads pin
//!   the store's current immutable snapshot and run lock-free against
//!   it; writes are submitted to the store's single writer thread, which
//!   batches them and publishes a new snapshot before acking (so a
//!   handle always reads its own writes). The per-handle plan cache
//!   invalidates off the store's schema epoch, so DDL from any handle
//!   drops every handle's stale plans.
//!
//! Either way the session keeps a private [`PlanCache`] and rewrite
//! options — only the stored state is shared.

use crate::plan_cache::{AnswerMeta, CacheKey, PlanCache, DEFAULT_PLAN_CACHE_CAP};
use crate::run::{execute_rewriting_with, rewriting_equivalent};
use crate::server::{SharedStore, StoreSnapshot, WriteOp};
use crate::sharded::{gather_plan, ShardedStore, UnionState};
use crate::state::{EngineState, WritePolicy};
use aggview_core::advisor::suggest_views;
use aggview_core::{Canonical, RewriteOptions, RewriteStats, Rewriter, Rewriting, ViewDef};
use aggview_engine::shard::{self, GatherPlan};
use aggview_engine::{execute_with, multiset_eq, set_eq, Database, PhysicalPlan, Relation};
use aggview_obs::{
    CounterId, Format, MetricsRegistry, ObsOptions, ObsSnapshot, QuerySection, Stage,
};
use aggview_sql::{Query, Statement};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Session configuration. Construct with [`SessionOptions::builder`],
/// `Default`, or struct-update syntax — all three stay supported so the
/// differential harness's options lattice keeps compiling unchanged.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Rewriter options (strategy, set mode, expand, ...).
    pub rewrite: RewriteOptions,
    /// Cross-check every rewritten answer against base-table evaluation.
    pub verify: bool,
    /// Maximum number of cached serving plans (`0` disables the cache and
    /// every `SELECT` runs the full search).
    pub plan_cache_cap: usize,
    /// Attach a [`GroupIndex`] on the exposed grouping columns of every
    /// materialized `GROUP BY` view, maintained through inserts/deletes
    /// and probed by rewritten point lookups.
    pub index_views: bool,
    /// Compile single-block queries to a [`PhysicalPlan`] before running
    /// (`false` forces the interpreter on every path — the differential
    /// harness uses this to cross-check compiled vs. interpreted answers).
    pub compile_plans: bool,
    /// Refresh every dependent view by full recomputation instead of the
    /// incremental-maintenance delta path (again a differential-harness
    /// lattice axis: delta and recompute must agree).
    pub recompute_views: bool,
    /// Let eligible queries run on the vectorized columnar operators
    /// (`false` forces the row-at-a-time interpreter on every path — the
    /// differential harness's row-vs-columnar lattice axis, and the
    /// `--no-columnar` escape hatch).
    pub columnar: bool,
    /// Observability configuration: whether a metrics registry is
    /// attached at all, the slow-query threshold and ring capacity, and
    /// whether answers carry an [`ObsSnapshot`].
    pub obs: ObsOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            rewrite: RewriteOptions::default(),
            verify: false,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            index_views: true,
            compile_plans: true,
            recompute_views: false,
            columnar: true,
            obs: ObsOptions::default(),
        }
    }
}

impl SessionOptions {
    /// A fluent builder over the defaults.
    pub fn builder() -> SessionOptionsBuilder {
        SessionOptionsBuilder {
            options: SessionOptions::default(),
        }
    }
}

/// Fluent construction of [`SessionOptions`]; every setter defaults to
/// the [`Default`] value when not called.
#[derive(Debug, Clone, Default)]
pub struct SessionOptionsBuilder {
    options: SessionOptions,
}

impl SessionOptionsBuilder {
    /// Set the rewriter options.
    pub fn rewrite(mut self, rewrite: RewriteOptions) -> Self {
        self.options.rewrite = rewrite;
        self
    }

    /// Cross-check every rewritten answer against base-table evaluation.
    pub fn verify(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Maximum number of cached serving plans (0 disables the cache).
    pub fn plan_cache_cap(mut self, cap: usize) -> Self {
        self.options.plan_cache_cap = cap;
        self
    }

    /// Attach group indexes to materialized `GROUP BY` views.
    pub fn index_views(mut self, on: bool) -> Self {
        self.options.index_views = on;
        self
    }

    /// Compile single-block queries to physical plans.
    pub fn compile_plans(mut self, on: bool) -> Self {
        self.options.compile_plans = on;
        self
    }

    /// Refresh dependent views by full recomputation.
    pub fn recompute_views(mut self, on: bool) -> Self {
        self.options.recompute_views = on;
        self
    }

    /// Run eligible queries on the vectorized columnar operators.
    pub fn columnar(mut self, on: bool) -> Self {
        self.options.columnar = on;
        self
    }

    /// Set the observability configuration.
    pub fn obs(mut self, obs: ObsOptions) -> Self {
        self.options.obs = obs;
        self
    }

    /// Finish building.
    pub fn build(self) -> SessionOptions {
        self.options
    }
}

/// The outcome of one executed statement.
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// DDL/DML acknowledgement (human-readable).
    Ok(String),
    /// A query answer: the relation, the SQL actually executed, and the
    /// views it used (empty = base tables).
    Answer {
        /// The result rows.
        relation: Relation,
        /// The executed query text.
        executed: String,
        /// Views used by the chosen rewriting.
        views_used: Vec<String>,
        /// Number of usable rewritings considered.
        candidates: usize,
        /// The executed rewriting is equivalent under *set* semantics only
        /// (§5): a multiset comparison against the original is not
        /// meaningful, compare as sets.
        set_semantics: bool,
        /// Outcome of the base-table cross-check, when enabled.
        verified: Option<bool>,
        /// Evaluation time of the executed query, milliseconds.
        elapsed_ms: f64,
        /// Instrumentation of the rewrite search that produced the plan
        /// (not printed by `Display`; the REPL surfaces it behind the
        /// `:stats` toggle). Boxed: the stats block is by far the largest
        /// field and would bloat every outcome otherwise.
        search: Box<RewriteStats>,
        /// A per-query observability snapshot (stage timings, search and
        /// cache sections). `None` unless the session's
        /// [`ObsOptions::attach_answers`] is set or the statement was an
        /// `EXPLAIN ANALYZE` (which forces it). Boxed for the same reason
        /// as `search`.
        obs: Option<Box<ObsSnapshot>>,
    },
    /// `EXPLAIN` output: one line per candidate.
    Explanation(Vec<String>),
}

impl fmt::Display for StatementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementOutcome::Ok(msg) => writeln!(f, "{msg}"),
            StatementOutcome::Answer {
                relation,
                executed,
                views_used,
                candidates,
                verified,
                elapsed_ms,
                set_semantics: _,
                search: _,
                obs: _,
            } => {
                if views_used.is_empty() {
                    writeln!(
                        f,
                        "-- no usable view; evaluated against base tables ({elapsed_ms:.2} ms)"
                    )?;
                } else {
                    writeln!(
                        f,
                        "-- answered from {views_used:?} ({candidates} candidate rewriting(s),                          {elapsed_ms:.2} ms)"
                    )?;
                    writeln!(f, "-- executed: {executed}")?;
                }
                if let Some(ok) = verified {
                    writeln!(
                        f,
                        "-- base-table cross-check: {}",
                        if *ok { "equivalent" } else { "MISMATCH" }
                    )?;
                }
                write!(f, "{relation}")
            }
            StatementOutcome::Explanation(lines) => {
                for l in lines {
                    writeln!(f, "{l}")?;
                }
                Ok(())
            }
        }
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug, Clone)]
pub struct SessionError(pub String);

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SessionError {}

pub(crate) fn err(msg: impl Into<String>) -> SessionError {
    SessionError(msg.into())
}

/// Where a session's state lives.
enum Backend {
    /// The session owns catalog, database, and views exclusively.
    Local(EngineState),
    /// The session is a handle on a shared store: `snapshot` is the
    /// store state pinned by the most recent statement (what
    /// [`Session::database`] exposes), refreshed before every read and
    /// after every acked write.
    Shared {
        store: SharedStore,
        snapshot: Arc<StoreSnapshot>,
    },
    /// The session drives a [`ShardedStore`]: writes route through the
    /// store (DDL broadcast, DML by partition key), reads scatter to the
    /// per-shard handle sessions and gather with the §4 recombination
    /// operators. `union` caches the unioned shard state — the exact
    /// state an unsharded store would hold — for metadata parity,
    /// fallback answers, and `--verify` cross-checks.
    Sharded {
        store: ShardedStore,
        shards: Vec<Session>,
        union: UnionState,
    },
}

/// A scriptable session.
pub struct Session {
    options: SessionOptions,
    backend: Backend,
    plan_cache: PlanCache,
    /// The observability registry this session records into: its own for
    /// a local session, the store-wide one for a shared handle, `None`
    /// when observability is disabled.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Plan-cache invalidations already folded into the registry (the
    /// cache counts cumulatively; the registry wants event deltas).
    invalidations_synced: u64,
    /// The gather decision of the most recent sharded `SELECT` (`None`
    /// for unsharded sessions), surfaced as the `-- shards:` line of
    /// `EXPLAIN ANALYZE`.
    last_shard_note: Option<String>,
}

impl Session {
    /// A fresh session owning its own state.
    pub fn new(options: SessionOptions) -> Self {
        let plan_cache = PlanCache::with_cap(options.plan_cache_cap);
        let metrics = options
            .obs
            .enabled
            .then(|| Arc::new(MetricsRegistry::new(&options.obs)));
        let mut state = EngineState::new();
        if let Some(m) = &metrics {
            state.db.set_metrics(Arc::clone(m));
        }
        Session {
            options,
            backend: Backend::Local(state),
            plan_cache,
            metrics,
            invalidations_synced: 0,
            last_shard_note: None,
        }
    }

    /// A session handle on a shared store (prefer
    /// [`crate::server::SharedStore::session`]). The handle keeps its own
    /// plan cache and rewrite options; state lives in the store — as does
    /// the metrics registry, so every handle's spans and counters land in
    /// one store-wide view (what `serve --metrics` scrapes).
    pub fn on_store(store: SharedStore, options: SessionOptions) -> Self {
        let plan_cache = PlanCache::with_cap(options.plan_cache_cap);
        let metrics = if options.obs.enabled {
            store.metrics().cloned()
        } else {
            None
        };
        let snapshot = store.load();
        Session {
            options,
            backend: Backend::Shared { store, snapshot },
            plan_cache,
            metrics,
            invalidations_synced: 0,
            last_shard_note: None,
        }
    }

    /// A driver session over a sharded store (prefer
    /// [`crate::sharded::ShardedStore::session`]). The driver keeps its
    /// own plan cache and records into the store's front-door registry;
    /// it owns one inner handle session per shard for scatter execution
    /// (each recording into its shard's registry). Inner handles never
    /// re-verify — the driver's `--verify` compares the gathered answer
    /// against the union instead.
    pub fn on_sharded_store(store: ShardedStore, options: SessionOptions) -> Self {
        let plan_cache = PlanCache::with_cap(options.plan_cache_cap);
        let metrics = if options.obs.enabled {
            store.metrics().cloned()
        } else {
            None
        };
        let inner_options = SessionOptions {
            verify: false,
            ..options.clone()
        };
        let shards = store
            .shards()
            .iter()
            .map(|s| s.session(inner_options.clone()))
            .collect();
        Session {
            options,
            backend: Backend::Sharded {
                store,
                shards,
                union: UnionState::new(),
            },
            plan_cache,
            metrics,
            invalidations_synced: 0,
            last_shard_note: None,
        }
    }

    /// The registry this session records into, if observability is on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// A full observability snapshot: every registry counter, the stage
    /// latency histograms, the slow-query ring, plus this session's
    /// plan-cache and store sections. `None` when observability is off.
    pub fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        let m = self.metrics.as_ref()?;
        let mut snap = ObsSnapshot::from_registry(m);
        let mut stats = RewriteStats::default();
        self.plan_cache.fill_stats(&mut stats);
        self.fill_store_stats(&mut stats);
        snap.plan_cache = Some(stats.plan_cache_section());
        snap.store = Some(stats.store_section());
        if let Backend::Sharded { store, .. } = &self.backend {
            snap.shards = store.shard_sections();
        }
        Some(snap)
    }

    /// The serving-plan cache (counters surface in `EXPLAIN` and the
    /// REPL's `:stats`; benches read them directly).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The state this session currently reads: its own, or the store
    /// snapshot pinned by the most recent statement.
    fn state(&self) -> &EngineState {
        match &self.backend {
            Backend::Local(state) => state,
            Backend::Shared { snapshot, .. } => &snapshot.state,
            Backend::Sharded { union, .. } => union.state(),
        }
    }

    /// The current database (base tables and materialized views). For a
    /// store-backed session this is the snapshot the last statement ran
    /// against — exactly the state its answer was computed on.
    pub fn database(&self) -> &Database {
        &self.state().db
    }

    /// The views defined so far.
    pub fn views(&self) -> &[ViewDef] {
        &self.state().views
    }

    /// The shared store behind this session, if any.
    pub fn store(&self) -> Option<&SharedStore> {
        match &self.backend {
            Backend::Shared { store, .. } => Some(store),
            _ => None,
        }
    }

    /// The sharded store behind this session, if any.
    pub fn sharded_store(&self) -> Option<&ShardedStore> {
        match &self.backend {
            Backend::Sharded { store, .. } => Some(store),
            _ => None,
        }
    }

    /// `(publish epoch, schema epoch)` of the pinned snapshot, for
    /// store-backed sessions (readers assert these are monotonic).
    pub fn snapshot_epochs(&self) -> Option<(u64, u64)> {
        match &self.backend {
            Backend::Shared { snapshot, .. } => Some((snapshot.epoch, snapshot.schema_epoch)),
            _ => None,
        }
    }

    /// The write-side maintenance policy of this session's options.
    fn write_policy(&self) -> WritePolicy {
        WritePolicy {
            index_views: self.options.index_views,
            recompute_views: self.options.recompute_views,
            columnar: self.options.columnar,
        }
    }

    /// Pin the store's current snapshot (no-op for local sessions) and
    /// align the plan cache with its schema epoch. For a sharded session
    /// this (re)builds the union of all shard snapshots when any shard
    /// published since the last build — which can fail if a broadcast
    /// view recomputes with a type error only the union exhibits.
    fn refresh(&mut self) -> Result<(), SessionError> {
        let metrics = self.metrics.clone();
        match &mut self.backend {
            Backend::Local(_) => {}
            Backend::Shared { store, snapshot } => {
                *snapshot = store.load();
                self.plan_cache.sync_epoch(snapshot.schema_epoch);
            }
            Backend::Sharded { store, union, .. } => {
                union.ensure(store, metrics.as_ref())?;
                self.plan_cache.sync_epoch(store.schema_epoch());
            }
        }
        self.sync_invalidation_metrics();
        Ok(())
    }

    /// Fold plan-cache invalidations that happened since the last sync
    /// into the registry (the cache tracks a cumulative count; several
    /// handles can share one store registry, so only deltas are added).
    fn sync_invalidation_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            let now = self.plan_cache.invalidations();
            let delta = now.saturating_sub(self.invalidations_synced);
            if delta > 0 {
                m.add(CounterId::PlanCacheInvalidations, delta);
                self.invalidations_synced = now;
            }
        }
    }

    /// Copy the pinned snapshot's identity and the store-cumulative
    /// counters into a stats record (no-op for local sessions).
    fn fill_store_stats(&self, stats: &mut RewriteStats) {
        match &self.backend {
            Backend::Shared { store, snapshot } => {
                let s = store.stats();
                stats.store_attached = true;
                stats.store_epoch = snapshot.epoch;
                stats.store_schema_epoch = snapshot.schema_epoch;
                stats.store_publishes = s.publishes.load(Ordering::Relaxed);
                stats.store_batches = s.batches.load(Ordering::Relaxed);
                stats.store_batched_ops = s.batched_ops.load(Ordering::Relaxed);
                stats.store_max_batch = s.max_batch.load(Ordering::Relaxed);
            }
            Backend::Sharded { store, .. } => {
                let agg = store.aggregate_section();
                stats.store_attached = true;
                stats.store_epoch = agg.epoch;
                stats.store_schema_epoch = agg.schema_epoch;
                stats.store_publishes = agg.publishes;
                stats.store_batches = agg.batches;
                stats.store_batched_ops = agg.batched_ops;
                stats.store_max_batch = agg.max_batch;
            }
            Backend::Local(_) => {}
        }
    }

    /// Execute one write statement on the session's backend: apply
    /// in place (local) or submit to the store's writer thread and wait
    /// for the publishing ack (shared).
    fn write(&mut self, op: WriteOp) -> Result<StatementOutcome, SessionError> {
        let policy = self.write_policy();
        let metrics = self.metrics.clone();
        if let Some(m) = &metrics {
            m.incr(CounterId::Writes);
        }
        let outcome = match &mut self.backend {
            Backend::Local(state) => {
                let applied = match &op {
                    WriteOp::CreateTable(ct) => state.create_table(ct)?,
                    WriteOp::CreateView(cv) => state.create_view(cv, policy)?,
                    WriteOp::Insert(ins) => state.insert(ins, policy)?,
                    WriteOp::Delete(del) => state.delete(del, policy)?,
                };
                if applied.schema_change {
                    self.plan_cache.note_schema_change();
                }
                Ok(StatementOutcome::Ok(applied.message))
            }
            Backend::Shared { store, snapshot } => {
                let applied = store.submit(op)?;
                // The ack guarantees the snapshot containing this write
                // is published: re-pin so we read our own write.
                *snapshot = store.load();
                self.plan_cache.sync_epoch(snapshot.schema_epoch);
                Ok(StatementOutcome::Ok(applied.message))
            }
            Backend::Sharded {
                store,
                union,
                shards: _,
            } => {
                let view_name = match &op {
                    WriteOp::CreateView(cv) => Some(cv.name.clone()),
                    _ => None,
                };
                let applied = store.apply_write(op)?;
                union.invalidate();
                self.plan_cache.sync_epoch(store.schema_epoch());
                let message = match view_name {
                    // A shard's CREATE VIEW ack reports that shard's
                    // materialized row count; recompose the global one
                    // from the union so the ack matches the unsharded
                    // message byte for byte.
                    Some(name) => {
                        let state = union.ensure(store, metrics.as_ref())?;
                        let n = state.db.get(&name).map_err(|e| err(e.to_string()))?.len();
                        format!("view `{name}` materialized ({n} rows)")
                    }
                    None => applied.message,
                };
                Ok(StatementOutcome::Ok(message))
            }
        };
        self.sync_invalidation_metrics();
        outcome
    }

    /// Execute one statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<StatementOutcome, SessionError> {
        if let Some(m) = &self.metrics {
            m.incr(CounterId::Statements);
        }
        match stmt {
            Statement::CreateTable(ct) => self.write(WriteOp::CreateTable(ct.clone())),
            Statement::CreateView(cv) => self.write(WriteOp::CreateView(cv.clone())),
            Statement::Insert(ins) => self.write(WriteOp::Insert(ins.clone())),
            Statement::Delete(del) => self.write(WriteOp::Delete(del.clone())),
            Statement::Select(q) => self.select(q, self.options.obs.attach_answers),
            Statement::Explain(q) => self.explain(q),
            Statement::ExplainAnalyze(q) => self.explain_analyze(q),
            Statement::Suggest(q) => self.suggest(q),
        }
    }

    /// Run a whole script, returning per-statement outcomes.
    pub fn run_script(
        &mut self,
        stmts: &[Statement],
    ) -> Result<Vec<StatementOutcome>, SessionError> {
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    /// Disjoint borrows of the read state, the plan cache, the options,
    /// and the registry — what the select path needs simultaneously.
    fn parts_mut(
        &mut self,
    ) -> (
        &EngineState,
        &mut PlanCache,
        &SessionOptions,
        Option<&MetricsRegistry>,
    ) {
        let state = match &self.backend {
            Backend::Local(s) => s,
            Backend::Shared { snapshot, .. } => &snapshot.state,
            Backend::Sharded { union, .. } => union.state(),
        };
        (
            state,
            &mut self.plan_cache,
            &self.options,
            self.metrics.as_deref(),
        )
    }

    fn select(&mut self, q: &Query, attach_obs: bool) -> Result<StatementOutcome, SessionError> {
        self.refresh()?;
        self.last_shard_note = None;
        let mut outcome = if matches!(self.backend, Backend::Sharded { .. }) {
            self.sharded_select(q, attach_obs)?
        } else {
            let (state, plan_cache, options, metrics) = self.parts_mut();
            select_on(state, plan_cache, options, metrics, attach_obs, q)?
        };
        if let StatementOutcome::Answer { search, obs, .. } = &mut outcome {
            self.fill_store_stats(search);
            // The store section is filled after the select path returns,
            // so refresh it on the attached snapshot too.
            if let Some(snap) = obs {
                snap.store = Some(search.store_section());
                if let Backend::Sharded { store, .. } = &self.backend {
                    snap.shards = store.shard_sections();
                }
            }
        }
        Ok(outcome)
    }

    /// The sharded `SELECT` path. The query is always *also* served
    /// through [`select_on`] against the union state — that produces the
    /// metadata (chosen rewriting, candidate count, cache behavior) and
    /// the fallback answer, both byte-identical to an unsharded session
    /// by construction. When the gather planner finds a sound
    /// decomposition, the served relation is replaced by the
    /// scatter+merge result: a disjoint union when each group lives on
    /// one shard, a §4 re-aggregation of partial aggregates otherwise.
    fn sharded_select(
        &mut self,
        q: &Query,
        attach_obs: bool,
    ) -> Result<StatementOutcome, SessionError> {
        let Backend::Sharded {
            store,
            shards,
            union,
        } = &mut self.backend
        else {
            unreachable!("sharded_select on a non-sharded backend");
        };
        let state = union.state();
        let metrics = self.metrics.as_deref();
        let n = store.shard_count();
        if let Some(m) = metrics {
            m.incr(CounterId::ShardFanouts);
        }
        let (merged, note) = match gather_plan(state, q) {
            GatherPlan::Fallback(reason) => {
                if let Some(m) = metrics {
                    m.incr(CounterId::ShardGatherFallbacks);
                }
                (
                    None,
                    format!("-- shards: {n}; gather: fallback ({reason}); served from the union"),
                )
            }
            GatherPlan::Concat => match scatter(shards, q) {
                Ok(parts) => {
                    let rows: Vec<usize> = parts.iter().map(|p| p.len()).collect();
                    if let Some(m) = metrics {
                        m.add(CounterId::ShardScatterQueries, n as u64);
                        m.incr(CounterId::ShardConcatMerges);
                    }
                    (
                        Some(shard::merge_concat(q, parts)),
                        format!(
                            "-- shards: {n}; gather: concat (disjoint groups); per-shard rows: {rows:?}"
                        ),
                    )
                }
                Err(e) => gather_failed(metrics, n, &e),
            },
            GatherPlan::Reaggregate(plan) => match scatter(shards, &plan.scatter) {
                Ok(parts) => {
                    let rows: Vec<usize> = parts.iter().map(|p| p.len()).collect();
                    if let Some(m) = metrics {
                        m.add(CounterId::ShardScatterQueries, n as u64);
                    }
                    match plan.merge(q, &parts) {
                        Ok(rel) => {
                            if let Some(m) = metrics {
                                m.incr(CounterId::ShardReaggMerges);
                            }
                            (
                                Some(rel),
                                format!(
                                    "-- shards: {n}; gather: re-aggregate ({} partial slot(s)); per-shard rows: {rows:?}",
                                    plan.slot_count()
                                ),
                            )
                        }
                        Err(e) => gather_failed(metrics, n, &err(e.to_string())),
                    }
                }
                Err(e) => gather_failed(metrics, n, &e),
            },
        };
        let mut outcome = select_on(
            state,
            &mut self.plan_cache,
            &self.options,
            metrics,
            attach_obs,
            q,
        )?;
        if let Some(mut rel) = merged {
            if let StatementOutcome::Answer {
                relation,
                verified,
                set_semantics,
                ..
            } = &mut outcome
            {
                // The union answer's column names come from the chosen
                // rewriting (e.g. `min_lo` when served from a view); the
                // scatter ran the original query. Adopt the union's
                // names so the printed header matches the unsharded
                // session byte for byte.
                if rel.arity() == relation.arity() {
                    rel.columns = relation.columns.clone();
                }
                if self.options.verify {
                    // The gathered relation is multiset-exact for the
                    // original query; the union answer may come from a
                    // set-semantics rewriting (§5), so compare
                    // accordingly.
                    let agree = if *set_semantics {
                        set_eq(&rel, relation)
                    } else {
                        multiset_eq(&rel, relation)
                    };
                    *verified = Some(verified.unwrap_or(true) && agree);
                }
                *relation = rel;
            }
        }
        self.last_shard_note = Some(note);
        Ok(outcome)
    }

    fn explain(&mut self, q: &Query) -> Result<StatementOutcome, SessionError> {
        self.refresh()?;
        let state = self.state();
        let rewriter = Rewriter::with_options(&state.catalog, self.options.rewrite.clone());
        let reports = rewriter
            .explain(q, &state.views)
            .map_err(|e| err(e.to_string()))?;
        if reports.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no views defined".to_string()
            ]));
        }
        let mut lines: Vec<String> = reports.iter().map(|r| r.to_string()).collect();
        // Tail: what the full search does with these candidates, the
        // serving-cache status for this query, and the shared store (if
        // any) — one ObsSnapshot, rendered by the shared renderer.
        let (_, search) = rewriter
            .rewrite_with_stats(q, &state.views)
            .map_err(|e| err(e.to_string()))?;
        let status = match cache_key(state, q) {
            Some(k) if self.plan_cache.peek(&k) => {
                format!("cached (fingerprint {:016x})", k.fingerprint())
            }
            Some(k) => format!("not cached (fingerprint {:016x})", k.fingerprint()),
            None => "uncacheable (outside the canonical fragment)".to_string(),
        };
        let mut stats = RewriteStats::default();
        self.plan_cache.fill_stats(&mut stats);
        self.fill_store_stats(&mut stats);
        let snap = ObsSnapshot {
            search: Some(search.search_section()),
            plan_cache: Some(stats.plan_cache_section()),
            store: Some(stats.store_section()),
            ..ObsSnapshot::default()
        };
        lines.extend(explain_tail_lines(&snap, Some(&status)));
        Ok(StatementOutcome::Explanation(lines))
    }

    /// `EXPLAIN ANALYZE`: run the query through the full serving path
    /// (plan cache included) with an observability snapshot forced on,
    /// and report per-stage timings plus the search counters instead of
    /// the result rows.
    fn explain_analyze(&mut self, q: &Query) -> Result<StatementOutcome, SessionError> {
        if self.metrics.is_none() {
            return Err(err(
                "EXPLAIN ANALYZE needs observability enabled (session started with --no-obs)",
            ));
        }
        // Bracket the select with the execution-path counters so the
        // report can say which interpreter answered *this* query.
        let exec_before = self.metrics.as_ref().map(|m| {
            (
                m.get(CounterId::ExecVectorized),
                m.get(CounterId::ExecRowFallback),
            )
        });
        let outcome = self.select(q, true)?;
        let StatementOutcome::Answer {
            relation,
            executed,
            views_used,
            candidates,
            obs,
            ..
        } = outcome
        else {
            return Err(err("EXPLAIN ANALYZE: select path returned no answer"));
        };
        let mut lines = Vec::new();
        if views_used.is_empty() {
            lines.push("-- no usable view; evaluated against base tables".to_string());
        } else {
            lines.push(format!(
                "-- answered from {views_used:?} ({candidates} candidate rewriting(s))"
            ));
        }
        lines.push(format!("-- executed: {executed}"));
        lines.push(format!("-- rows: {}", relation.len()));
        if let (Some(m), Some((vec_before, row_before))) = (&self.metrics, exec_before) {
            let vectorized = m.get(CounterId::ExecVectorized) - vec_before;
            let fallback = m.get(CounterId::ExecRowFallback) - row_before;
            let path = match (vectorized, fallback) {
                (v, 0) if v > 0 => "vectorized (columnar kernels)".to_string(),
                (0, f) if f > 0 => "row-at-a-time interpreter".to_string(),
                (0, 0) => "n/a (no plan execution recorded)".to_string(),
                (v, f) => format!("mixed ({v} vectorized, {f} row)"),
            };
            lines.push(format!(
                "-- exec path: {path}; session totals: exec_vectorized={} exec_row_fallback={}",
                m.get(CounterId::ExecVectorized),
                m.get(CounterId::ExecRowFallback),
            ));
        }
        if let Some(note) = &self.last_shard_note {
            lines.push(note.clone());
        }
        let snap = obs.expect("metrics enabled forces an attached snapshot");
        lines.extend(explain_tail_lines(&snap, None));
        Ok(StatementOutcome::Explanation(lines))
    }

    fn suggest(&mut self, q: &Query) -> Result<StatementOutcome, SessionError> {
        self.refresh()?;
        let state = self.state();
        let stats = state.table_stats();
        let suggestions =
            suggest_views(q, &state.catalog, &stats).map_err(|e| err(e.to_string()))?;
        if suggestions.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no beneficial view suggestions".to_string(),
            ]));
        }
        let lines = suggestions
            .iter()
            .take(5)
            .map(|s| {
                format!(
                    "benefit {:>12.0}: CREATE VIEW {} AS {};",
                    s.benefit(),
                    s.view.name,
                    s.view.query
                )
            })
            .collect();
        Ok(StatementOutcome::Explanation(lines))
    }
}

/// Execute `q` on every shard's handle session, in shard order,
/// returning the per-shard relations (the gather barrier).
fn scatter(shards: &mut [Session], q: &Query) -> Result<Vec<Relation>, SessionError> {
    shards
        .iter_mut()
        .map(|s| match s.execute(&Statement::Select(q.clone()))? {
            StatementOutcome::Answer { relation, .. } => Ok(relation),
            _ => Err(err("scatter: shard returned a non-answer outcome")),
        })
        .collect()
}

/// Count and describe a failed scatter/merge; the caller serves the
/// union answer instead (identical to the unsharded result, so a shard
/// execution error never changes what the client sees).
fn gather_failed(
    metrics: Option<&MetricsRegistry>,
    n: usize,
    e: &SessionError,
) -> (Option<Relation>, String) {
    if let Some(m) = metrics {
        m.incr(CounterId::ShardGatherFallbacks);
    }
    (
        None,
        format!("-- shards: {n}; gather: failed ({e}); served from the union"),
    )
}

/// The cache key of a query: its normalized canonical form (resolved
/// against every stored relation, views included) plus the output
/// column names. `None` = outside the canonical fragment, uncacheable.
fn cache_key(state: &EngineState, q: &Query) -> Option<CacheKey> {
    let canon = Canonical::from_query(q, &state.db).ok()?;
    Some(CacheKey::new(&canon, q.output_names()))
}

/// Render an [`ObsSnapshot`] as `EXPLAIN`-style tail lines: the shared
/// human renderer, each line `-- `-prefixed, with the per-query cache
/// status appended to the plan-cache line when given.
fn explain_tail_lines(snap: &ObsSnapshot, cache_status: Option<&str>) -> Vec<String> {
    snap.render(Format::Human)
        .lines()
        .map(|l| match cache_status {
            Some(status) if l.starts_with("plan-cache:") => {
                format!("-- {l}; this query: {status}")
            }
            _ => format!("-- {l}"),
        })
        .collect()
}

/// Per-query observability bookkeeping at the end of the select path:
/// account the query (and its slowness) on the registry and build the
/// attached snapshot when requested.
#[allow(clippy::too_many_arguments)]
fn finish_query_obs(
    metrics: Option<&MetricsRegistry>,
    attach: bool,
    q: &Query,
    fingerprint: u64,
    cached: bool,
    total_ns: u64,
    stages: &[(Stage, u64)],
    search: &RewriteStats,
) -> Option<Box<ObsSnapshot>> {
    let m = metrics?;
    m.note_query(fingerprint, || q.to_string(), total_ns, stages);
    attach.then(|| {
        Box::new(ObsSnapshot {
            search: Some(search.search_section()),
            plan_cache: Some(search.plan_cache_section()),
            store: Some(search.store_section()),
            query: Some(QuerySection {
                fingerprint,
                cached,
                stages: stages.to_vec(),
                total_ns,
            }),
            ..ObsSnapshot::default()
        })
    })
}

/// The full select path against one fixed state: plan-cache lookup,
/// rewrite search, cost ranking, compilation, execution, caching. Shared
/// by both backends — a local session passes its own state, a store
/// handle passes its pinned snapshot.
fn select_on(
    state: &EngineState,
    plan_cache: &mut PlanCache,
    options: &SessionOptions,
    metrics: Option<&MetricsRegistry>,
    attach_obs: bool,
    q: &Query,
) -> Result<StatementOutcome, SessionError> {
    let total_start_ns = metrics.map(|m| m.now_ns());
    let key = cache_key(state, q);
    let fingerprint = key.as_ref().map_or(0, |k| k.fingerprint());
    if let Some(k) = &key {
        // Hit path: no search, no cost ranking, no physical planning —
        // bind the stored relations and run. The entry is used by
        // reference (disjoint borrows), never cloned.
        if let Some(cached) = plan_cache.lookup(k) {
            if let Some(m) = metrics {
                m.incr(CounterId::PlanCacheHits);
            }
            // The warm path is the one the ≤5% observability-overhead
            // budget protects, so it is timed with the registry clock
            // alone: one read before execution, one read after — the
            // second closes the execute stage, the end-to-end total,
            // AND elapsed_ms. (The un-instrumented path keeps its own
            // Instant pair.)
            let exec_start_ns = metrics.map(|m| m.now_ns());
            let t = metrics.is_none().then(std::time::Instant::now);
            let relation = match (&cached.plan, &cached.rewriting) {
                (Some(plan), _) => plan.run(&state.db).map_err(|e| err(e.to_string()))?,
                (None, Some(rw)) => execute_rewriting_with(rw, &state.db, options.columnar)
                    .map_err(|e| err(e.to_string()))?,
                (None, None) => {
                    execute_with(q, &state.db, options.columnar).map_err(|e| err(e.to_string()))?
                }
            };
            let (elapsed_ms, hit_timing) = match (metrics, exec_start_ns, total_start_ns) {
                (Some(m), Some(exec_start), Some(total_start)) => {
                    let end = m.now_ns();
                    let exec_ns = end.saturating_sub(exec_start);
                    m.observe_ns(Stage::Execute, exec_ns);
                    (
                        exec_ns as f64 / 1e6,
                        Some((exec_ns, end.saturating_sub(total_start))),
                    )
                }
                _ => (t.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3), None),
            };
            let verified = match (options.verify, &cached.rewriting) {
                (true, Some(rw)) => {
                    Some(rewriting_equivalent(q, rw, &state.db).map_err(|e| err(e.to_string()))?)
                }
                _ => None,
            };
            let executed = cached.meta.executed.clone();
            let views_used = cached.meta.views_used.clone();
            let candidates = cached.meta.candidates;
            let set_semantics = cached.meta.set_semantics;
            // No search ran: report zeroed search counters plus the
            // session-cumulative cache counters.
            let mut search = RewriteStats::default();
            plan_cache.fill_stats(&mut search);
            let hit_stages = hit_timing.map(|(exec_ns, _)| [(Stage::Execute, exec_ns)]);
            let obs = finish_query_obs(
                metrics,
                attach_obs,
                q,
                fingerprint,
                true,
                hit_timing.map_or(0, |(_, total_ns)| total_ns),
                hit_stages.as_ref().map_or(&[][..], |s| &s[..]),
                &search,
            );
            return Ok(StatementOutcome::Answer {
                relation,
                executed,
                views_used,
                candidates,
                verified,
                elapsed_ms,
                set_semantics,
                search: Box::new(search),
                obs,
            });
        }
        if let Some(m) = metrics {
            m.incr(CounterId::PlanCacheMisses);
        }
    }
    let rewriter = Rewriter::with_options(&state.catalog, options.rewrite.clone());
    let (mut rewritings, mut search): (Vec<Rewriting>, RewriteStats) = rewriter
        .rewrite_with_stats(q, &state.views)
        .map_err(|e| err(e.to_string()))?;
    if let Some(m) = metrics {
        // Folds the search counters in and observes the rewrite stage
        // with the search's own prepare+search wall time.
        search.record_into(m);
    }
    let rewrite_ns = (search.prepare_time + search.search_time)
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    plan_cache.fill_stats(&mut search);
    let stats = state.table_stats();
    rewritings.sort_by(|a, b| {
        a.cost(&stats)
            .partial_cmp(&b.cost(&stats))
            .expect("finite costs")
    });
    let candidates = rewritings.len();
    match rewritings.first() {
        None => {
            // Base-table answer. Compile once, run, and cache the
            // compiled plan for canonically identical arrivals.
            let plan_span = metrics.map(|m| m.span(Stage::Plan));
            let plan = options
                .compile_plans
                .then(|| PhysicalPlan::compile(q, &state.db).ok())
                .flatten()
                .map(|mut p| {
                    p.set_columnar(options.columnar);
                    p
                });
            let plan_ns = plan_span.map(|s| s.finish());
            if let (Some(m), true) = (metrics, plan.is_some()) {
                m.incr(CounterId::PlanCompiles);
            }
            let exec_span = metrics.map(|m| m.span(Stage::Execute));
            let t = std::time::Instant::now();
            let relation = match &plan {
                Some(p) => p.run(&state.db).map_err(|e| err(e.to_string()))?,
                None => {
                    execute_with(q, &state.db, options.columnar).map_err(|e| err(e.to_string()))?
                }
            };
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            let exec_ns = exec_span.map(|s| s.finish());
            if let Some(k) = key {
                let meta = AnswerMeta {
                    executed: q.to_string(),
                    views_used: Vec::new(),
                    candidates: 0,
                    set_semantics: false,
                };
                plan_cache.store(k, None, plan, meta, search.clone());
            }
            let obs = finish_query_obs(
                metrics,
                attach_obs,
                q,
                fingerprint,
                false,
                total_ns_since(metrics, total_start_ns),
                &miss_stage_timings(rewrite_ns, plan_ns, exec_ns),
                &search,
            );
            Ok(StatementOutcome::Answer {
                relation,
                executed: q.to_string(),
                views_used: Vec::new(),
                candidates: 0,
                verified: None,
                elapsed_ms,
                set_semantics: false,
                search: Box::new(search),
                obs,
            })
        }
        Some(best) => {
            // A rewriting that needs no scaffolding (auxiliary views,
            // the Nat table) is a single block over stored relations:
            // compile it once. Scaffolded rewritings cache without a
            // plan — the hit still skips the whole search.
            let plan_span = metrics.map(|m| m.span(Stage::Plan));
            let plan = (options.compile_plans && best.aux_views.is_empty() && !best.requires_nat)
                .then(|| PhysicalPlan::compile(&best.query, &state.db).ok())
                .flatten()
                .map(|mut p| {
                    p.set_columnar(options.columnar);
                    p
                });
            let plan_ns = plan_span.map(|s| s.finish());
            if let (Some(m), true) = (metrics, plan.is_some()) {
                m.incr(CounterId::PlanCompiles);
            }
            let exec_span = metrics.map(|m| m.span(Stage::Execute));
            let t = std::time::Instant::now();
            let relation = match &plan {
                Some(p) => p.run(&state.db).map_err(|e| err(e.to_string()))?,
                None => execute_rewriting_with(best, &state.db, options.columnar)
                    .map_err(|e| err(e.to_string()))?,
            };
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            let exec_ns = exec_span.map(|s| s.finish());
            let verified = if options.verify {
                Some(rewriting_equivalent(q, best, &state.db).map_err(|e| err(e.to_string()))?)
            } else {
                None
            };
            let executed = best.query.to_string();
            let views_used = best.views_used.clone();
            let set_semantics = best.set_semantics;
            if let Some(k) = key {
                let meta = AnswerMeta {
                    executed: executed.clone(),
                    views_used: views_used.clone(),
                    candidates,
                    set_semantics,
                };
                plan_cache.store(k, Some(best.clone()), plan, meta, search.clone());
            }
            let obs = finish_query_obs(
                metrics,
                attach_obs,
                q,
                fingerprint,
                false,
                total_ns_since(metrics, total_start_ns),
                &miss_stage_timings(rewrite_ns, plan_ns, exec_ns),
                &search,
            );
            Ok(StatementOutcome::Answer {
                relation,
                executed,
                views_used,
                candidates,
                verified,
                elapsed_ms,
                set_semantics,
                search: Box::new(search),
                obs,
            })
        }
    }
}

/// Elapsed registry-clock nanoseconds since `start_ns` (0 when
/// observability is off).
fn total_ns_since(metrics: Option<&MetricsRegistry>, start_ns: Option<u64>) -> u64 {
    match (metrics, start_ns) {
        (Some(m), Some(start)) => m.now_ns().saturating_sub(start),
        _ => 0,
    }
}

/// The per-query stage breakdown of a plan-cache miss, in pipeline order.
fn miss_stage_timings(
    rewrite_ns: u64,
    plan_ns: Option<u64>,
    exec_ns: Option<u64>,
) -> Vec<(Stage, u64)> {
    let mut stages = vec![(Stage::Rewrite, rewrite_ns)];
    if let Some(ns) = plan_ns {
        stages.push((Stage::Plan, ns));
    }
    if let Some(ns) = exec_ns {
        stages.push((Stage::Execute, ns));
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_engine::Value;
    use aggview_sql::parse_script;

    fn run(script: &str, verify: bool) -> Vec<StatementOutcome> {
        let stmts = parse_script(script).expect("script parses");
        let mut session = Session::new(SessionOptions {
            verify,
            ..SessionOptions::default()
        });
        session.run_script(&stmts).expect("script runs")
    }

    #[test]
    fn end_to_end_script() {
        let outcomes = run(
            "CREATE TABLE Sales (Region, Product, Amount);
             INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3), (2, 10, 3);
             CREATE VIEW Totals AS
               SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
               FROM Sales GROUP BY Region, Product;
             SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;",
            true,
        );
        assert_eq!(outcomes.len(), 4);
        let StatementOutcome::Answer {
            relation,
            views_used,
            verified,
            ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(views_used, &vec!["Totals".to_string()]);
        assert_eq!(verified, &Some(true));
        assert_eq!(relation.len(), 2);
        let rows = relation.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(12)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(6)]);
    }

    #[test]
    fn select_without_views_hits_base_tables() {
        let outcomes = run(
            "CREATE TABLE T (a); INSERT INTO T VALUES (1), (1); SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer {
            views_used,
            relation,
            ..
        } = &outcomes[2]
        else {
            panic!("expected an answer")
        };
        assert!(views_used.is_empty());
        assert_eq!(relation.len(), 2);
    }

    #[test]
    fn insert_refreshes_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6);
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn explain_reports() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a FROM T;
             EXPLAIN SELECT a, SUM(b) FROM T GROUP BY a;",
            false,
        );
        let StatementOutcome::Explanation(lines) = &outcomes[2] else {
            panic!("expected an explanation")
        };
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("not usable"), "{lines:?}");
        assert!(lines[1].contains("-- search:"), "{lines:?}");
        assert!(lines[1].contains("states="), "{lines:?}");
        assert!(lines[2].contains("plan-cache:"), "{lines:?}");
        assert!(lines[2].contains("not cached (fingerprint"), "{lines:?}");
        assert!(lines[3].contains("store: none"), "{lines:?}");
    }

    #[test]
    fn errors_are_reported() {
        let stmts = parse_script("INSERT INTO Nope VALUES (1);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());

        let stmts = parse_script("CREATE TABLE T (a); INSERT INTO T VALUES (1, 2);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        let e = session.run_script(&stmts).unwrap_err();
        assert!(e.to_string().contains("arity"));
    }

    #[test]
    fn duplicate_relation_names_rejected() {
        let stmts = parse_script("CREATE TABLE T (a); CREATE VIEW T AS SELECT a FROM T;").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());
    }

    #[test]
    fn delete_maintains_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7), (2, 7);
             DELETE FROM T WHERE b = 7;
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        assert!(msg.contains("2 row(s) deleted"), "{msg}");
        assert!(msg.contains("1 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        // Group a=2 vanished entirely.
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_with_minmax_view_recomputes() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, MAX(b) AS m, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 9);
             DELETE FROM T WHERE b = 9;
             SELECT a, MAX(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        // MAX can loosen under deletes: the view must recompute (0
        // incremental), but the answer stays correct.
        assert!(msg.contains("0 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(5)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_everything() {
        let outcomes = run(
            "CREATE TABLE T (a);
             INSERT INTO T VALUES (1), (2);
             DELETE FROM T;
             SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer { relation, .. } = &outcomes[3] else {
            panic!("expected an answer")
        };
        assert!(relation.is_empty());
    }

    #[test]
    fn repeated_select_hits_the_plan_cache() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             SELECT a, SUM(b) FROM T GROUP BY a;
             SELECT x.a, SUM(x.b) FROM T x GROUP BY x.a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        let outcomes = session.run_script(&stmts).expect("script runs");
        // The second SELECT is canonically identical (modulo the binding
        // name) and must be served from the cache with the same answer.
        assert_eq!(session.plan_cache().hits(), 1);
        let (
            StatementOutcome::Answer { relation: r1, .. },
            StatementOutcome::Answer { relation: r2, .. },
        ) = (&outcomes[3], &outcomes[4])
        else {
            panic!("expected answers")
        };
        assert_eq!(r1.sorted_rows(), r2.sorted_rows());
    }

    #[test]
    fn create_view_invalidates_cached_plans() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6);
             SELECT a, SUM(b) FROM T GROUP BY a;
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             SELECT a, SUM(b) FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        let outcomes = session.run_script(&stmts).expect("script runs");
        // The CREATE VIEW bumps the epoch: the second SELECT must re-run
        // the search (and now pick up the new view) instead of reusing the
        // stale base-table plan.
        assert_eq!(session.plan_cache().hits(), 0);
        assert_eq!(session.plan_cache().invalidations(), 1);
        let StatementOutcome::Answer { views_used, .. } = &outcomes[4] else {
            panic!("expected an answer")
        };
        assert_eq!(views_used, &vec!["V".to_string()]);
    }

    #[test]
    fn cached_answers_track_writes() {
        // A cached plan binds relations by name: INSERT/DELETE between two
        // hits must still produce fresh answers.
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5);
             SELECT a, SUM(b) FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 10), (2, 1);
             SELECT a, SUM(b) FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions {
            verify: true,
            ..SessionOptions::default()
        });
        let outcomes = session.run_script(&stmts).expect("script runs");
        assert_eq!(session.plan_cache().hits(), 1);
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[5]
        else {
            panic!("expected an answer")
        };
        assert_eq!(verified, &Some(true));
        let rows = relation.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(15)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn grouped_views_get_an_index() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (2, 1), (3, 9);
             DELETE FROM T WHERE b = 5;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        session.run_script(&stmts).expect("script runs");
        let idx = session.database().index("V").expect("V is indexed");
        let rel = session.database().get("V").unwrap();
        assert!(idx.is_consistent_with(rel), "index tracks maintenance");
        assert_eq!(idx.key_cols(), &[0]);
    }

    #[test]
    fn index_can_be_disabled() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions {
            index_views: false,
            ..SessionOptions::default()
        });
        session.run_script(&stmts).expect("script runs");
        assert!(session.database().index("V").is_none());
    }

    #[test]
    fn cheapest_candidate_wins() {
        // Two usable views; the smaller one must be chosen.
        let outcomes = run(
            "CREATE TABLE T (a, b, c);
             INSERT INTO T VALUES (1,1,1),(1,2,1),(2,1,1),(2,2,1),(1,1,1);
             CREATE VIEW Fine AS SELECT a, b, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a, b;
             CREATE VIEW Coarse AS SELECT a, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a;
             SELECT a, SUM(c) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            views_used,
            verified,
            candidates,
            ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert!(*candidates >= 2);
        assert_eq!(views_used, &vec!["Coarse".to_string()]);
        assert_eq!(verified, &Some(true));
    }

    const SHARDED_SCRIPT: &str = "CREATE TABLE Sales (Region, Product, Amount);
         INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3), (2, 10, 3), (3, 12, 9);
         CREATE VIEW Totals AS
           SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
           FROM Sales GROUP BY Region, Product;
         SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;
         SELECT Product, SUM(Amount), AVG(Amount) FROM Sales GROUP BY Product;
         SELECT COUNT(Amount) FROM Sales;";

    /// Every sharded answer (concat, re-aggregate, and scalar gather)
    /// equals the unsharded answer as a multiset, with identical DDL/DML
    /// acks and rewrite metadata, at every shard count.
    #[test]
    fn sharded_session_matches_local_answers() {
        let stmts = parse_script(SHARDED_SCRIPT).expect("parses");
        let mut local = Session::new(SessionOptions {
            verify: true,
            ..SessionOptions::default()
        });
        let reference = local.run_script(&stmts).expect("local runs");
        for shards in [1, 2, 3] {
            let store = crate::sharded::ShardedStore::with_defaults(shards);
            let mut session = store.session(SessionOptions {
                verify: true,
                ..SessionOptions::default()
            });
            let outcomes = session.run_script(&stmts).expect("sharded runs");
            assert_eq!(outcomes.len(), reference.len());
            for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
                match (got, want) {
                    (StatementOutcome::Ok(g), StatementOutcome::Ok(w)) => {
                        assert_eq!(g, w, "ack #{i} diverged at {shards} shard(s)")
                    }
                    (
                        StatementOutcome::Answer {
                            relation: gr,
                            views_used: gv,
                            candidates: gc,
                            verified: gok,
                            ..
                        },
                        StatementOutcome::Answer {
                            relation: wr,
                            views_used: wv,
                            candidates: wc,
                            ..
                        },
                    ) => {
                        assert!(
                            multiset_eq(gr, wr),
                            "answer #{i} diverged at {shards} shard(s):\n{gr}\nvs\n{wr}"
                        );
                        assert_eq!(gv, wv, "views #{i} at {shards} shard(s)");
                        assert_eq!(gc, wc, "candidates #{i} at {shards} shard(s)");
                        assert_eq!(gok, &Some(true), "verify #{i} at {shards} shard(s)");
                    }
                    _ => panic!("outcome kind #{i} diverged at {shards} shard(s)"),
                }
            }
        }
    }

    #[test]
    fn sharded_selects_hit_the_driver_plan_cache() {
        let store = crate::sharded::ShardedStore::with_defaults(2);
        let mut session = store.session(SessionOptions::default());
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (2, 6), (3, 7);
             SELECT a, SUM(b) FROM T GROUP BY a;
             SELECT a, SUM(b) FROM T GROUP BY a;",
        )
        .expect("parses");
        session.run_script(&stmts).expect("runs");
        assert_eq!(session.plan_cache().hits(), 1);
        let m = session.metrics().expect("obs on by default");
        assert_eq!(m.get(CounterId::ShardFanouts), 2);
        assert_eq!(m.get(CounterId::ShardConcatMerges), 2);
        assert_eq!(m.get(CounterId::ShardScatterQueries), 4);
    }

    #[test]
    fn sharded_explain_analyze_reports_the_gather() {
        let store = crate::sharded::ShardedStore::with_defaults(2);
        let mut session = store.session(SessionOptions::default());
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (2, 6);
             EXPLAIN ANALYZE SELECT b, SUM(a) FROM T GROUP BY b;",
        )
        .expect("parses");
        let outcomes = session.run_script(&stmts).expect("runs");
        let StatementOutcome::Explanation(lines) = &outcomes[2] else {
            panic!("expected explanation")
        };
        let shard_line = lines
            .iter()
            .find(|l| l.starts_with("-- shards:"))
            .expect("shards line present");
        assert!(shard_line.contains("gather: re-aggregate"), "{shard_line}");
        // Joins fall back to the union and say so.
        let stmts = parse_script(
            "CREATE TABLE U (a, c);
             EXPLAIN ANALYZE SELECT T.a FROM T, U WHERE T.a = U.a;",
        )
        .expect("parses");
        let outcomes = session.run_script(&stmts).expect("runs");
        let StatementOutcome::Explanation(lines) = &outcomes[1] else {
            panic!("expected explanation")
        };
        let shard_line = lines
            .iter()
            .find(|l| l.starts_with("-- shards:"))
            .expect("shards line present");
        assert!(shard_line.contains("gather: fallback"), "{shard_line}");
    }

    #[test]
    fn sharded_error_messages_match_unsharded() {
        let store = crate::sharded::ShardedStore::with_defaults(2);
        let mut session = store.session(SessionOptions::default());
        let e = session
            .execute(&aggview_sql::parse_statement("INSERT INTO Nope VALUES (1)").unwrap())
            .expect_err("unknown table");
        assert_eq!(e.0, "unknown table `Nope`");
        session
            .execute(&aggview_sql::parse_statement("CREATE TABLE T (a, b)").unwrap())
            .expect("create");
        let e = session
            .execute(&aggview_sql::parse_statement("INSERT INTO T VALUES (1, 2, 3)").unwrap())
            .expect_err("arity");
        assert_eq!(e.0, "row arity 3 does not match table `T` arity 2");
        session
            .execute(&aggview_sql::parse_statement("CREATE VIEW V AS SELECT a FROM T").unwrap())
            .expect("view");
        let e = session
            .execute(&aggview_sql::parse_statement("INSERT INTO V VALUES (1)").unwrap())
            .expect_err("view insert");
        assert_eq!(e.0, "`V` is a view; INSERT into base tables only");
    }
}
