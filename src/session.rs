//! A scriptable session: the state machine behind the `aggview` CLI.
//!
//! A session holds a catalog, a database instance and the materialized
//! views defined so far, and executes [`Statement`]s:
//!
//! * `CREATE TABLE` registers the schema (with keys) and an empty relation,
//! * `CREATE VIEW` registers and *materializes* the view,
//! * `INSERT` appends literal rows (and refreshes dependent views),
//! * `SELECT` rewrites the query against the known views, picks the
//!   cheapest usable rewriting by actual cardinalities, executes it, and
//!   (optionally) cross-checks the answer against base-table evaluation,
//! * `EXPLAIN SELECT` reports, per view and mapping, the produced
//!   rewriting or the violated usability condition.

use crate::run::{execute_rewriting, rewriting_equivalent};
use aggview_catalog::{Catalog, TableSchema};
use aggview_core::advisor::suggest_views;
use aggview_core::{RewriteOptions, RewriteStats, Rewriter, Rewriting, TableStats, ViewDef};
use aggview_engine::maintenance::{maintain_view, DeltaKind};
use aggview_engine::{execute, Database, Relation, Value};
use aggview_sql::ast::Literal;
use aggview_sql::{Query, Statement};
use std::fmt;

/// Session configuration.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Rewriter options (strategy, set mode, expand, ...).
    pub rewrite: RewriteOptions,
    /// Cross-check every rewritten answer against base-table evaluation.
    pub verify: bool,
}

/// The outcome of one executed statement.
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// DDL/DML acknowledgement (human-readable).
    Ok(String),
    /// A query answer: the relation, the SQL actually executed, and the
    /// views it used (empty = base tables).
    Answer {
        /// The result rows.
        relation: Relation,
        /// The executed query text.
        executed: String,
        /// Views used by the chosen rewriting.
        views_used: Vec<String>,
        /// Number of usable rewritings considered.
        candidates: usize,
        /// Outcome of the base-table cross-check, when enabled.
        verified: Option<bool>,
        /// Evaluation time of the executed query, milliseconds.
        elapsed_ms: f64,
        /// Instrumentation of the rewrite search that produced the plan
        /// (not printed by `Display`; the REPL surfaces it behind the
        /// `:stats` toggle).
        search: RewriteStats,
    },
    /// `EXPLAIN` output: one line per candidate.
    Explanation(Vec<String>),
}

impl fmt::Display for StatementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementOutcome::Ok(msg) => writeln!(f, "{msg}"),
            StatementOutcome::Answer {
                relation,
                executed,
                views_used,
                candidates,
                verified,
                elapsed_ms,
                search: _,
            } => {
                if views_used.is_empty() {
                    writeln!(
                        f,
                        "-- no usable view; evaluated against base tables ({elapsed_ms:.2} ms)"
                    )?;
                } else {
                    writeln!(
                        f,
                        "-- answered from {views_used:?} ({candidates} candidate rewriting(s),                          {elapsed_ms:.2} ms)"
                    )?;
                    writeln!(f, "-- executed: {executed}")?;
                }
                if let Some(ok) = verified {
                    writeln!(
                        f,
                        "-- base-table cross-check: {}",
                        if *ok { "equivalent" } else { "MISMATCH" }
                    )?;
                }
                write!(f, "{relation}")
            }
            StatementOutcome::Explanation(lines) => {
                for l in lines {
                    writeln!(f, "{l}")?;
                }
                Ok(())
            }
        }
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug, Clone)]
pub struct SessionError(pub String);

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SessionError {}

fn err(msg: impl Into<String>) -> SessionError {
    SessionError(msg.into())
}

/// A scriptable session.
pub struct Session {
    options: SessionOptions,
    catalog: Catalog,
    db: Database,
    views: Vec<ViewDef>,
}

impl Session {
    /// A fresh session.
    pub fn new(options: SessionOptions) -> Self {
        Session {
            options,
            catalog: Catalog::new(),
            db: Database::new(),
            views: Vec::new(),
        }
    }

    /// The current database (base tables and materialized views).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The views defined so far.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Execute one statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<StatementOutcome, SessionError> {
        match stmt {
            Statement::CreateTable(ct) => {
                let mut schema = TableSchema::new(ct.name.clone(), ct.columns.clone());
                for key in &ct.keys {
                    schema = schema.with_key(key.iter().map(|s| s.as_str()));
                }
                self.catalog
                    .add_table(schema)
                    .map_err(|e| err(e.to_string()))?;
                self.db
                    .insert(ct.name.clone(), Relation::empty(ct.columns.clone()));
                Ok(StatementOutcome::Ok(format!(
                    "table `{}` created ({} columns, {} key(s))",
                    ct.name,
                    ct.columns.len(),
                    ct.keys.len()
                )))
            }
            Statement::CreateView(cv) => {
                if self.catalog.table(&cv.name).is_some()
                    || self.views.iter().any(|v| v.name == cv.name)
                {
                    return Err(err(format!("relation `{}` already exists", cv.name)));
                }
                let view = ViewDef::new(cv.name.clone(), cv.query.clone());
                let mut rel = execute(&view.query, &self.db)
                    .map_err(|e| err(format!("view `{}`: {e}", cv.name)))?;
                rel.columns = view.output_names();
                let n = rel.len();
                self.db.insert(view.name.clone(), rel);
                self.views.push(view);
                Ok(StatementOutcome::Ok(format!(
                    "view `{}` materialized ({n} rows)",
                    cv.name
                )))
            }
            Statement::Insert(ins) => {
                let rel = self
                    .db
                    .get(&ins.table)
                    .map_err(|e| err(e.to_string()))?
                    .clone();
                if self.catalog.table(&ins.table).is_none() {
                    return Err(err(format!(
                        "`{}` is a view; INSERT into base tables only",
                        ins.table
                    )));
                }
                let mut rel = rel;
                let mut delta: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
                for row in &ins.rows {
                    if row.len() != rel.arity() {
                        return Err(err(format!(
                            "row arity {} does not match table `{}` arity {}",
                            row.len(),
                            ins.table,
                            rel.arity()
                        )));
                    }
                    let values: Vec<Value> = row.iter().map(lit_value).collect();
                    rel.push(values.clone());
                    delta.push(values);
                }
                self.db.insert(ins.table.clone(), rel);
                let incremental =
                    self.maintain_views(&ins.table, DeltaKind::Insert(&delta))?;
                Ok(StatementOutcome::Ok(format!(
                    "{} row(s) inserted into `{}`; {incremental} view(s) maintained                      incrementally",
                    ins.rows.len(),
                    ins.table
                )))
            }
            Statement::Delete(del) => {
                if self.catalog.table(&del.table).is_none() {
                    return Err(err(format!(
                        "`{}` is not a base table; DELETE applies to base tables only",
                        del.table
                    )));
                }
                // Partition the rows by the filter, using the engine's own
                // predicate semantics (SELECT * ... WHERE filter).
                let all_cols = self
                    .db
                    .get(&del.table)
                    .map_err(|e| err(e.to_string()))?
                    .columns
                    .clone();
                let matching = {
                    let q = Query {
                        distinct: false,
                        select: all_cols
                            .iter()
                            .map(|c| {
                                aggview_sql::ast::SelectItem::expr(
                                    aggview_sql::ast::Expr::col(c.clone()),
                                )
                            })
                            .collect(),
                        from: vec![aggview_sql::ast::TableRef::new(del.table.clone())],
                        where_clause: del.filter.clone(),
                        group_by: Vec::new(),
                        having: None,
                    };
                    execute(&q, &self.db).map_err(|e| err(e.to_string()))?
                };
                // Remove exactly the matching multiset from the base table.
                let mut remaining = self
                    .db
                    .get(&del.table)
                    .map_err(|e| err(e.to_string()))?
                    .clone();
                let mut budget: std::collections::HashMap<Vec<Value>, usize> =
                    std::collections::HashMap::new();
                for r in &matching.rows {
                    *budget.entry(r.clone()).or_insert(0) += 1;
                }
                remaining.rows.retain(|r| match budget.get_mut(r) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                });
                self.db.insert(del.table.clone(), remaining);
                let incremental =
                    self.maintain_views(&del.table, DeltaKind::Delete(&matching.rows))?;
                Ok(StatementOutcome::Ok(format!(
                    "{} row(s) deleted from `{}`; {incremental} view(s) maintained incrementally",
                    matching.len(),
                    del.table
                )))
            }
            Statement::Select(q) => self.select(q),
            Statement::Explain(q) => self.explain(q),
            Statement::Suggest(q) => self.suggest(q),
        }
    }

    /// Run a whole script, returning per-statement outcomes.
    pub fn run_script(&mut self, stmts: &[Statement]) -> Result<Vec<StatementOutcome>, SessionError> {
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    fn rewriter(&self) -> Rewriter<'_> {
        Rewriter::with_options(&self.catalog, self.options.rewrite.clone())
    }

    fn stats(&self) -> TableStats {
        let mut stats = TableStats::new();
        for (name, rel) in self.db.iter() {
            stats.set(name.clone(), rel.len());
        }
        stats
    }

    fn select(&self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let rewriter = self.rewriter();
        let (mut rewritings, search): (Vec<Rewriting>, RewriteStats) = rewriter
            .rewrite_with_stats(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        let stats = self.stats();
        rewritings.sort_by(|a, b| {
            a.cost(&stats)
                .partial_cmp(&b.cost(&stats))
                .expect("finite costs")
        });
        let candidates = rewritings.len();
        match rewritings.first() {
            None => {
                let t = std::time::Instant::now();
                let relation = execute(q, &self.db).map_err(|e| err(e.to_string()))?;
                Ok(StatementOutcome::Answer {
                    relation,
                    executed: q.to_string(),
                    views_used: Vec::new(),
                    candidates: 0,
                    verified: None,
                    elapsed_ms: t.elapsed().as_secs_f64() * 1e3,
                    search,
                })
            }
            Some(best) => {
                let t = std::time::Instant::now();
                let relation =
                    execute_rewriting(best, &self.db).map_err(|e| err(e.to_string()))?;
                let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
                let verified = if self.options.verify {
                    Some(
                        rewriting_equivalent(q, best, &self.db)
                            .map_err(|e| err(e.to_string()))?,
                    )
                } else {
                    None
                };
                Ok(StatementOutcome::Answer {
                    relation,
                    executed: best.query.to_string(),
                    views_used: best.views_used.clone(),
                    candidates,
                    verified,
                    elapsed_ms,
                    search,
                })
            }
        }
    }

    fn explain(&self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let rewriter = self.rewriter();
        let reports = rewriter
            .explain(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        if reports.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no views defined".to_string()
            ]));
        }
        let mut lines: Vec<String> = reports.iter().map(|r| r.to_string()).collect();
        // Tail line: what the full search does with these candidates.
        let (_, search) = rewriter
            .rewrite_with_stats(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        lines.push(format!("-- search: {}", search.summary()));
        Ok(StatementOutcome::Explanation(lines))
    }

    fn suggest(&self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let stats = self.stats();
        let suggestions =
            suggest_views(q, &self.catalog, &stats).map_err(|e| err(e.to_string()))?;
        if suggestions.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no beneficial view suggestions".to_string(),
            ]));
        }
        let lines = suggestions
            .iter()
            .take(5)
            .map(|s| {
                format!(
                    "benefit {:>12.0}: CREATE VIEW {} AS {};",
                    s.benefit(),
                    s.view.name,
                    s.view.query
                )
            })
            .collect();
        Ok(StatementOutcome::Explanation(lines))
    }

    /// Maintain every view after `delta` was inserted into
    /// `changed_table`: incrementally where the plan allows, by
    /// recomputation otherwise. Views over views are handled by
    /// propagating the set of changed relations through the (topologically
    /// ordered) definition list; their deltas are not tracked, so they
    /// recompute. Returns how many views took the incremental path.
    fn maintain_views(
        &mut self,
        changed_table: &str,
        delta: DeltaKind<'_>,
    ) -> Result<usize, SessionError> {
        let mut changed: Vec<String> = vec![changed_table.to_string()];
        let mut incremental = 0usize;
        for v in &self.views {
            if !v.query.from.iter().any(|t| changed.contains(&t.table)) {
                continue;
            }
            let mut rel = self
                .db
                .get(&v.name)
                .map_err(|e| err(e.to_string()))?
                .clone();
            let direct_only = v.query.from.len() == 1 && v.query.from[0].table == changed_table;
            let took_incremental = if direct_only {
                maintain_view(&v.query, &mut rel, changed_table, delta, &self.db)
                    .map_err(|e| err(format!("maintaining `{}`: {e}", v.name)))?
            } else {
                let mut fresh = execute(&v.query, &self.db)
                    .map_err(|e| err(format!("refreshing `{}`: {e}", v.name)))?;
                fresh.columns = v.output_names();
                rel = fresh;
                false
            };
            incremental += took_incremental as usize;
            self.db.insert(v.name.clone(), rel);
            changed.push(v.name.clone());
        }
        Ok(incremental)
    }
}

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_script;

    fn run(script: &str, verify: bool) -> Vec<StatementOutcome> {
        let stmts = parse_script(script).expect("script parses");
        let mut session = Session::new(SessionOptions {
            verify,
            ..SessionOptions::default()
        });
        session.run_script(&stmts).expect("script runs")
    }

    #[test]
    fn end_to_end_script() {
        let outcomes = run(
            "CREATE TABLE Sales (Region, Product, Amount);
             INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3), (2, 10, 3);
             CREATE VIEW Totals AS
               SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
               FROM Sales GROUP BY Region, Product;
             SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;",
            true,
        );
        assert_eq!(outcomes.len(), 4);
        let StatementOutcome::Answer {
            relation,
            views_used,
            verified,
            ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(views_used, &vec!["Totals".to_string()]);
        assert_eq!(verified, &Some(true));
        assert_eq!(relation.len(), 2);
        let rows = relation.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(12)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(6)]);
    }

    #[test]
    fn select_without_views_hits_base_tables() {
        let outcomes = run(
            "CREATE TABLE T (a); INSERT INTO T VALUES (1), (1); SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer {
            views_used,
            relation,
            ..
        } = &outcomes[2]
        else {
            panic!("expected an answer")
        };
        assert!(views_used.is_empty());
        assert_eq!(relation.len(), 2);
    }

    #[test]
    fn insert_refreshes_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6);
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn explain_reports() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a FROM T;
             EXPLAIN SELECT a, SUM(b) FROM T GROUP BY a;",
            false,
        );
        let StatementOutcome::Explanation(lines) = &outcomes[2] else {
            panic!("expected an explanation")
        };
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("not usable"), "{lines:?}");
        assert!(lines[1].contains("-- search:"), "{lines:?}");
        assert!(lines[1].contains("states="), "{lines:?}");
    }

    #[test]
    fn errors_are_reported() {
        let stmts = parse_script("INSERT INTO Nope VALUES (1);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());

        let stmts = parse_script("CREATE TABLE T (a); INSERT INTO T VALUES (1, 2);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        let e = session.run_script(&stmts).unwrap_err();
        assert!(e.to_string().contains("arity"));
    }

    #[test]
    fn duplicate_relation_names_rejected() {
        let stmts =
            parse_script("CREATE TABLE T (a); CREATE VIEW T AS SELECT a FROM T;").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());
    }

    #[test]
    fn delete_maintains_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7), (2, 7);
             DELETE FROM T WHERE b = 7;
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        assert!(msg.contains("2 row(s) deleted"), "{msg}");
        assert!(msg.contains("1 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        // Group a=2 vanished entirely.
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_with_minmax_view_recomputes() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, MAX(b) AS m, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 9);
             DELETE FROM T WHERE b = 9;
             SELECT a, MAX(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        // MAX can loosen under deletes: the view must recompute (0
        // incremental), but the answer stays correct.
        assert!(msg.contains("0 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(5)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_everything() {
        let outcomes = run(
            "CREATE TABLE T (a);
             INSERT INTO T VALUES (1), (2);
             DELETE FROM T;
             SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer { relation, .. } = &outcomes[3] else {
            panic!("expected an answer")
        };
        assert!(relation.is_empty());
    }

    #[test]
    fn cheapest_candidate_wins() {
        // Two usable views; the smaller one must be chosen.
        let outcomes = run(
            "CREATE TABLE T (a, b, c);
             INSERT INTO T VALUES (1,1,1),(1,2,1),(2,1,1),(2,2,1),(1,1,1);
             CREATE VIEW Fine AS SELECT a, b, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a, b;
             CREATE VIEW Coarse AS SELECT a, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a;
             SELECT a, SUM(c) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            views_used,
            verified,
            candidates,
            ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert!(*candidates >= 2);
        assert_eq!(views_used, &vec!["Coarse".to_string()]);
        assert_eq!(verified, &Some(true));
    }
}
