//! A scriptable session: the state machine behind the `aggview` CLI.
//!
//! A session holds a catalog, a database instance and the materialized
//! views defined so far, and executes [`Statement`]s:
//!
//! * `CREATE TABLE` registers the schema (with keys) and an empty relation,
//! * `CREATE VIEW` registers and *materializes* the view,
//! * `INSERT` appends literal rows (and refreshes dependent views),
//! * `SELECT` rewrites the query against the known views, picks the
//!   cheapest usable rewriting by actual cardinalities, executes it, and
//!   (optionally) cross-checks the answer against base-table evaluation,
//! * `EXPLAIN SELECT` reports, per view and mapping, the produced
//!   rewriting or the violated usability condition.

use crate::plan_cache::{AnswerMeta, CacheKey, PlanCache, DEFAULT_PLAN_CACHE_CAP};
use crate::run::{execute_rewriting, rewriting_equivalent};
use aggview_catalog::{Catalog, TableSchema};
use aggview_core::advisor::suggest_views;
use aggview_core::{
    Canonical, RewriteOptions, RewriteStats, Rewriter, Rewriting, TableStats, ViewDef,
};
use aggview_engine::maintenance::{maintain_view, plan_for_view, DeltaKind, MaintenancePlan};
use aggview_engine::{execute, Database, GroupIndex, PhysicalPlan, Relation, Value};
use aggview_sql::{Query, Statement};
use std::fmt;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Rewriter options (strategy, set mode, expand, ...).
    pub rewrite: RewriteOptions,
    /// Cross-check every rewritten answer against base-table evaluation.
    pub verify: bool,
    /// Maximum number of cached serving plans (`0` disables the cache and
    /// every `SELECT` runs the full search).
    pub plan_cache_cap: usize,
    /// Attach a [`GroupIndex`] on the exposed grouping columns of every
    /// materialized `GROUP BY` view, maintained through inserts/deletes
    /// and probed by rewritten point lookups.
    pub index_views: bool,
    /// Compile single-block queries to a [`PhysicalPlan`] before running
    /// (`false` forces the interpreter on every path — the differential
    /// harness uses this to cross-check compiled vs. interpreted answers).
    pub compile_plans: bool,
    /// Refresh every dependent view by full recomputation instead of the
    /// incremental-maintenance delta path (again a differential-harness
    /// lattice axis: delta and recompute must agree).
    pub recompute_views: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            rewrite: RewriteOptions::default(),
            verify: false,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            index_views: true,
            compile_plans: true,
            recompute_views: false,
        }
    }
}

/// The outcome of one executed statement.
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// DDL/DML acknowledgement (human-readable).
    Ok(String),
    /// A query answer: the relation, the SQL actually executed, and the
    /// views it used (empty = base tables).
    Answer {
        /// The result rows.
        relation: Relation,
        /// The executed query text.
        executed: String,
        /// Views used by the chosen rewriting.
        views_used: Vec<String>,
        /// Number of usable rewritings considered.
        candidates: usize,
        /// The executed rewriting is equivalent under *set* semantics only
        /// (§5): a multiset comparison against the original is not
        /// meaningful, compare as sets.
        set_semantics: bool,
        /// Outcome of the base-table cross-check, when enabled.
        verified: Option<bool>,
        /// Evaluation time of the executed query, milliseconds.
        elapsed_ms: f64,
        /// Instrumentation of the rewrite search that produced the plan
        /// (not printed by `Display`; the REPL surfaces it behind the
        /// `:stats` toggle). Boxed: the stats block is by far the largest
        /// field and would bloat every outcome otherwise.
        search: Box<RewriteStats>,
    },
    /// `EXPLAIN` output: one line per candidate.
    Explanation(Vec<String>),
}

impl fmt::Display for StatementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementOutcome::Ok(msg) => writeln!(f, "{msg}"),
            StatementOutcome::Answer {
                relation,
                executed,
                views_used,
                candidates,
                verified,
                elapsed_ms,
                set_semantics: _,
                search: _,
            } => {
                if views_used.is_empty() {
                    writeln!(
                        f,
                        "-- no usable view; evaluated against base tables ({elapsed_ms:.2} ms)"
                    )?;
                } else {
                    writeln!(
                        f,
                        "-- answered from {views_used:?} ({candidates} candidate rewriting(s),                          {elapsed_ms:.2} ms)"
                    )?;
                    writeln!(f, "-- executed: {executed}")?;
                }
                if let Some(ok) = verified {
                    writeln!(
                        f,
                        "-- base-table cross-check: {}",
                        if *ok { "equivalent" } else { "MISMATCH" }
                    )?;
                }
                write!(f, "{relation}")
            }
            StatementOutcome::Explanation(lines) => {
                for l in lines {
                    writeln!(f, "{l}")?;
                }
                Ok(())
            }
        }
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug, Clone)]
pub struct SessionError(pub String);

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SessionError {}

fn err(msg: impl Into<String>) -> SessionError {
    SessionError(msg.into())
}

/// A scriptable session.
pub struct Session {
    options: SessionOptions,
    catalog: Catalog,
    db: Database,
    views: Vec<ViewDef>,
    plan_cache: PlanCache,
}

impl Session {
    /// A fresh session.
    pub fn new(options: SessionOptions) -> Self {
        let plan_cache = PlanCache::with_cap(options.plan_cache_cap);
        Session {
            options,
            catalog: Catalog::new(),
            db: Database::new(),
            views: Vec::new(),
            plan_cache,
        }
    }

    /// The serving-plan cache (counters surface in `EXPLAIN` and the
    /// REPL's `:stats`; benches read them directly).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The current database (base tables and materialized views).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The views defined so far.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Execute one statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<StatementOutcome, SessionError> {
        match stmt {
            Statement::CreateTable(ct) => {
                let mut schema = TableSchema::new(ct.name.clone(), ct.columns.clone());
                for key in &ct.keys {
                    schema = schema.with_key(key.iter().map(|s| s.as_str()));
                }
                self.catalog
                    .add_table(schema)
                    .map_err(|e| err(e.to_string()))?;
                self.db
                    .insert(ct.name.clone(), Relation::empty(ct.columns.clone()));
                self.plan_cache.note_schema_change();
                Ok(StatementOutcome::Ok(format!(
                    "table `{}` created ({} columns, {} key(s))",
                    ct.name,
                    ct.columns.len(),
                    ct.keys.len()
                )))
            }
            Statement::CreateView(cv) => {
                if self.catalog.table(&cv.name).is_some()
                    || self.views.iter().any(|v| v.name == cv.name)
                {
                    return Err(err(format!("relation `{}` already exists", cv.name)));
                }
                let view = ViewDef::new(cv.name.clone(), cv.query.clone());
                let mut rel = execute(&view.query, &self.db)
                    .map_err(|e| err(format!("view `{}`: {e}", cv.name)))?;
                rel.columns = view.output_names();
                let n = rel.len();
                self.db.insert(view.name.clone(), rel);
                if self.options.index_views {
                    if let Some(key_cols) = self.view_index_key(&view) {
                        let idx = GroupIndex::build(
                            self.db.get(&view.name).map_err(|e| err(e.to_string()))?,
                            key_cols,
                        );
                        self.db.set_index(view.name.clone(), idx);
                    }
                }
                self.views.push(view);
                self.plan_cache.note_schema_change();
                Ok(StatementOutcome::Ok(format!(
                    "view `{}` materialized ({n} rows)",
                    cv.name
                )))
            }
            Statement::Insert(ins) => {
                let rel = self
                    .db
                    .get(&ins.table)
                    .map_err(|e| err(e.to_string()))?
                    .clone();
                if self.catalog.table(&ins.table).is_none() {
                    return Err(err(format!(
                        "`{}` is a view; INSERT into base tables only",
                        ins.table
                    )));
                }
                let mut rel = rel;
                let mut delta: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
                for row in &ins.rows {
                    if row.len() != rel.arity() {
                        return Err(err(format!(
                            "row arity {} does not match table `{}` arity {}",
                            row.len(),
                            ins.table,
                            rel.arity()
                        )));
                    }
                    let values: Vec<Value> =
                        row.iter().map(aggview_engine::value::lit_value).collect();
                    rel.push(values.clone());
                    delta.push(values);
                }
                self.db.insert(ins.table.clone(), rel);
                let incremental = self.maintain_views(&ins.table, DeltaKind::Insert(&delta))?;
                Ok(StatementOutcome::Ok(format!(
                    "{} row(s) inserted into `{}`; {incremental} view(s) maintained                      incrementally",
                    ins.rows.len(),
                    ins.table
                )))
            }
            Statement::Delete(del) => {
                if self.catalog.table(&del.table).is_none() {
                    return Err(err(format!(
                        "`{}` is not a base table; DELETE applies to base tables only",
                        del.table
                    )));
                }
                // Partition the rows by the filter, using the engine's own
                // predicate semantics (SELECT * ... WHERE filter).
                let all_cols = self
                    .db
                    .get(&del.table)
                    .map_err(|e| err(e.to_string()))?
                    .columns
                    .clone();
                let matching = {
                    let q = Query {
                        distinct: false,
                        select: all_cols
                            .iter()
                            .map(|c| {
                                aggview_sql::ast::SelectItem::expr(aggview_sql::ast::Expr::col(
                                    c.clone(),
                                ))
                            })
                            .collect(),
                        from: vec![aggview_sql::ast::TableRef::new(del.table.clone())],
                        where_clause: del.filter.clone(),
                        group_by: Vec::new(),
                        having: None,
                    };
                    execute(&q, &self.db).map_err(|e| err(e.to_string()))?
                };
                // Remove exactly the matching multiset from the base table.
                let mut remaining = self
                    .db
                    .get(&del.table)
                    .map_err(|e| err(e.to_string()))?
                    .clone();
                let mut budget: std::collections::HashMap<Vec<Value>, usize> =
                    std::collections::HashMap::new();
                for r in &matching.rows {
                    *budget.entry(r.clone()).or_insert(0) += 1;
                }
                remaining.rows.retain(|r| match budget.get_mut(r) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                });
                self.db.insert(del.table.clone(), remaining);
                let incremental =
                    self.maintain_views(&del.table, DeltaKind::Delete(&matching.rows))?;
                Ok(StatementOutcome::Ok(format!(
                    "{} row(s) deleted from `{}`; {incremental} view(s) maintained incrementally",
                    matching.len(),
                    del.table
                )))
            }
            Statement::Select(q) => self.select(q),
            Statement::Explain(q) => self.explain(q),
            Statement::Suggest(q) => self.suggest(q),
        }
    }

    /// Run a whole script, returning per-statement outcomes.
    pub fn run_script(
        &mut self,
        stmts: &[Statement],
    ) -> Result<Vec<StatementOutcome>, SessionError> {
        stmts.iter().map(|s| self.execute(s)).collect()
    }

    fn rewriter(&self) -> Rewriter<'_> {
        Rewriter::with_options(&self.catalog, self.options.rewrite.clone())
    }

    fn stats(&self) -> TableStats {
        let mut stats = TableStats::new();
        for (name, rel) in self.db.iter() {
            stats.set(name.clone(), rel.len());
        }
        stats
    }

    /// The cache key of a query: its normalized canonical form (resolved
    /// against every stored relation, views included) plus the output
    /// column names. `None` = outside the canonical fragment, uncacheable.
    fn cache_key(&self, q: &Query) -> Option<CacheKey> {
        let canon = Canonical::from_query(q, &self.db).ok()?;
        Some(CacheKey::new(&canon, q.output_names()))
    }

    /// The [`GroupIndex`] key columns for a materialized view: aligned
    /// with the incremental-maintenance plan when one exists (so the same
    /// index serves maintenance lookups), else the exposed grouping
    /// columns of any other `GROUP BY` view; `None` for ungrouped views.
    fn view_index_key(&self, view: &ViewDef) -> Option<Vec<usize>> {
        if let MaintenancePlan::Incremental(plan) = plan_for_view(&view.query, &self.db) {
            return Some(plan.index_key_cols().to_vec());
        }
        if view.query.group_by.is_empty() {
            return None;
        }
        let canon = Canonical::from_query(&view.query, &self.db).ok()?;
        let key: Vec<usize> = canon
            .select
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                aggview_core::SelItem::Col(c) if canon.groups.contains(c) => Some(i),
                _ => None,
            })
            .collect();
        (!key.is_empty()).then_some(key)
    }

    fn select(&mut self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let key = self.cache_key(q);
        if let Some(k) = &key {
            // Hit path: no search, no cost ranking, no physical planning —
            // bind the stored relations and run. The entry is used by
            // reference (disjoint field borrows), never cloned.
            if let Some(cached) = self.plan_cache.lookup(k) {
                let t = std::time::Instant::now();
                let relation = match (&cached.plan, &cached.rewriting) {
                    (Some(plan), _) => plan.run(&self.db).map_err(|e| err(e.to_string()))?,
                    (None, Some(rw)) => {
                        execute_rewriting(rw, &self.db).map_err(|e| err(e.to_string()))?
                    }
                    (None, None) => execute(q, &self.db).map_err(|e| err(e.to_string()))?,
                };
                let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
                let verified = match (self.options.verify, &cached.rewriting) {
                    (true, Some(rw)) => Some(
                        rewriting_equivalent(q, rw, &self.db).map_err(|e| err(e.to_string()))?,
                    ),
                    _ => None,
                };
                let executed = cached.meta.executed.clone();
                let views_used = cached.meta.views_used.clone();
                let candidates = cached.meta.candidates;
                let set_semantics = cached.meta.set_semantics;
                // No search ran: report zeroed search counters plus the
                // session-cumulative cache counters.
                let mut search = RewriteStats::default();
                self.plan_cache.fill_stats(&mut search);
                return Ok(StatementOutcome::Answer {
                    relation,
                    executed,
                    views_used,
                    candidates,
                    verified,
                    elapsed_ms,
                    set_semantics,
                    search: Box::new(search),
                });
            }
        }
        let rewriter = self.rewriter();
        let (mut rewritings, mut search): (Vec<Rewriting>, RewriteStats) = rewriter
            .rewrite_with_stats(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        self.plan_cache.fill_stats(&mut search);
        let stats = self.stats();
        rewritings.sort_by(|a, b| {
            a.cost(&stats)
                .partial_cmp(&b.cost(&stats))
                .expect("finite costs")
        });
        let candidates = rewritings.len();
        match rewritings.first() {
            None => {
                // Base-table answer. Compile once, run, and cache the
                // compiled plan for canonically identical arrivals.
                let plan = self
                    .options
                    .compile_plans
                    .then(|| PhysicalPlan::compile(q, &self.db).ok())
                    .flatten();
                let t = std::time::Instant::now();
                let relation = match &plan {
                    Some(p) => p.run(&self.db).map_err(|e| err(e.to_string()))?,
                    None => execute(q, &self.db).map_err(|e| err(e.to_string()))?,
                };
                let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
                if let Some(k) = key {
                    let meta = AnswerMeta {
                        executed: q.to_string(),
                        views_used: Vec::new(),
                        candidates: 0,
                        set_semantics: false,
                    };
                    self.plan_cache.store(k, None, plan, meta, search.clone());
                }
                Ok(StatementOutcome::Answer {
                    relation,
                    executed: q.to_string(),
                    views_used: Vec::new(),
                    candidates: 0,
                    verified: None,
                    elapsed_ms,
                    set_semantics: false,
                    search: Box::new(search),
                })
            }
            Some(best) => {
                // A rewriting that needs no scaffolding (auxiliary views,
                // the Nat table) is a single block over stored relations:
                // compile it once. Scaffolded rewritings cache without a
                // plan — the hit still skips the whole search.
                let plan =
                    (self.options.compile_plans && best.aux_views.is_empty() && !best.requires_nat)
                        .then(|| PhysicalPlan::compile(&best.query, &self.db).ok())
                        .flatten();
                let t = std::time::Instant::now();
                let relation = match &plan {
                    Some(p) => p.run(&self.db).map_err(|e| err(e.to_string()))?,
                    None => execute_rewriting(best, &self.db).map_err(|e| err(e.to_string()))?,
                };
                let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
                let verified = if self.options.verify {
                    Some(rewriting_equivalent(q, best, &self.db).map_err(|e| err(e.to_string()))?)
                } else {
                    None
                };
                let executed = best.query.to_string();
                let views_used = best.views_used.clone();
                let set_semantics = best.set_semantics;
                if let Some(k) = key {
                    let meta = AnswerMeta {
                        executed: executed.clone(),
                        views_used: views_used.clone(),
                        candidates,
                        set_semantics,
                    };
                    self.plan_cache
                        .store(k, Some(best.clone()), plan, meta, search.clone());
                }
                Ok(StatementOutcome::Answer {
                    relation,
                    executed,
                    views_used,
                    candidates,
                    verified,
                    elapsed_ms,
                    set_semantics,
                    search: Box::new(search),
                })
            }
        }
    }

    fn explain(&self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let rewriter = self.rewriter();
        let reports = rewriter
            .explain(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        if reports.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no views defined".to_string()
            ]));
        }
        let mut lines: Vec<String> = reports.iter().map(|r| r.to_string()).collect();
        // Tail line: what the full search does with these candidates.
        let (_, search) = rewriter
            .rewrite_with_stats(q, &self.views)
            .map_err(|e| err(e.to_string()))?;
        lines.push(format!("-- search: {}", search.summary()));
        // Tail line: serving-cache status for this query and the
        // session-cumulative counters.
        let mut stats = RewriteStats::default();
        self.plan_cache.fill_stats(&mut stats);
        let status = match self.cache_key(q) {
            Some(k) if self.plan_cache.peek(&k) => {
                format!("cached (fingerprint {:016x})", k.fingerprint())
            }
            Some(k) => format!("not cached (fingerprint {:016x})", k.fingerprint()),
            None => "uncacheable (outside the canonical fragment)".to_string(),
        };
        lines.push(format!(
            "-- {}; this query: {status}",
            stats.plan_cache_summary()
        ));
        Ok(StatementOutcome::Explanation(lines))
    }

    fn suggest(&self, q: &Query) -> Result<StatementOutcome, SessionError> {
        let stats = self.stats();
        let suggestions =
            suggest_views(q, &self.catalog, &stats).map_err(|e| err(e.to_string()))?;
        if suggestions.is_empty() {
            return Ok(StatementOutcome::Explanation(vec![
                "no beneficial view suggestions".to_string(),
            ]));
        }
        let lines = suggestions
            .iter()
            .take(5)
            .map(|s| {
                format!(
                    "benefit {:>12.0}: CREATE VIEW {} AS {};",
                    s.benefit(),
                    s.view.name,
                    s.view.query
                )
            })
            .collect();
        Ok(StatementOutcome::Explanation(lines))
    }

    /// Maintain every view after `delta` was inserted into
    /// `changed_table`: incrementally where the plan allows, by
    /// recomputation otherwise. Views over views are handled by
    /// propagating the set of changed relations through the (topologically
    /// ordered) definition list; their deltas are not tracked, so they
    /// recompute. Returns how many views took the incremental path.
    fn maintain_views(
        &mut self,
        changed_table: &str,
        delta: DeltaKind<'_>,
    ) -> Result<usize, SessionError> {
        let mut changed: Vec<String> = vec![changed_table.to_string()];
        let mut incremental = 0usize;
        for v in &self.views {
            if !v.query.from.iter().any(|t| changed.contains(&t.table)) {
                continue;
            }
            let mut rel = self
                .db
                .get(&v.name)
                .map_err(|e| err(e.to_string()))?
                .clone();
            let direct_only = !self.options.recompute_views
                && v.query.from.len() == 1
                && v.query.from[0].table == changed_table;
            // Detach the view's group index (dropped by `db.insert`
            // otherwise), maintain it alongside the rows, and re-attach.
            let mut idx = self.db.take_index(&v.name);
            let took_incremental = if direct_only {
                maintain_view(
                    &v.query,
                    &mut rel,
                    changed_table,
                    delta,
                    &self.db,
                    idx.as_mut(),
                )
                .map_err(|e| err(format!("maintaining `{}`: {e}", v.name)))?
            } else {
                let mut fresh = execute(&v.query, &self.db)
                    .map_err(|e| err(format!("refreshing `{}`: {e}", v.name)))?;
                fresh.columns = v.output_names();
                rel = fresh;
                if let Some(i) = idx.as_mut() {
                    i.rebuild(&rel);
                }
                false
            };
            incremental += took_incremental as usize;
            self.db.insert(v.name.clone(), rel);
            if let Some(i) = idx {
                self.db.set_index(v.name.clone(), i);
            }
            changed.push(v.name.clone());
        }
        Ok(incremental)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggview_sql::parse_script;

    fn run(script: &str, verify: bool) -> Vec<StatementOutcome> {
        let stmts = parse_script(script).expect("script parses");
        let mut session = Session::new(SessionOptions {
            verify,
            ..SessionOptions::default()
        });
        session.run_script(&stmts).expect("script runs")
    }

    #[test]
    fn end_to_end_script() {
        let outcomes = run(
            "CREATE TABLE Sales (Region, Product, Amount);
             INSERT INTO Sales VALUES (1, 10, 5), (1, 11, 7), (2, 10, 3), (2, 10, 3);
             CREATE VIEW Totals AS
               SELECT Region, Product, SUM(Amount) AS T, COUNT(Amount) AS N
               FROM Sales GROUP BY Region, Product;
             SELECT Region, SUM(Amount) FROM Sales GROUP BY Region;",
            true,
        );
        assert_eq!(outcomes.len(), 4);
        let StatementOutcome::Answer {
            relation,
            views_used,
            verified,
            ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(views_used, &vec!["Totals".to_string()]);
        assert_eq!(verified, &Some(true));
        assert_eq!(relation.len(), 2);
        let rows = relation.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(12)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(6)]);
    }

    #[test]
    fn select_without_views_hits_base_tables() {
        let outcomes = run(
            "CREATE TABLE T (a); INSERT INTO T VALUES (1), (1); SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer {
            views_used,
            relation,
            ..
        } = &outcomes[2]
        else {
            panic!("expected an answer")
        };
        assert!(views_used.is_empty());
        assert_eq!(relation.len(), 2);
    }

    #[test]
    fn insert_refreshes_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6);
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[3]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn explain_reports() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a FROM T;
             EXPLAIN SELECT a, SUM(b) FROM T GROUP BY a;",
            false,
        );
        let StatementOutcome::Explanation(lines) = &outcomes[2] else {
            panic!("expected an explanation")
        };
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("not usable"), "{lines:?}");
        assert!(lines[1].contains("-- search:"), "{lines:?}");
        assert!(lines[1].contains("states="), "{lines:?}");
        assert!(lines[2].contains("plan-cache:"), "{lines:?}");
        assert!(lines[2].contains("not cached (fingerprint"), "{lines:?}");
    }

    #[test]
    fn errors_are_reported() {
        let stmts = parse_script("INSERT INTO Nope VALUES (1);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());

        let stmts = parse_script("CREATE TABLE T (a); INSERT INTO T VALUES (1, 2);").unwrap();
        let mut session = Session::new(SessionOptions::default());
        let e = session.run_script(&stmts).unwrap_err();
        assert!(e.to_string().contains("arity"));
    }

    #[test]
    fn duplicate_relation_names_rejected() {
        let stmts = parse_script("CREATE TABLE T (a); CREATE VIEW T AS SELECT a FROM T;").unwrap();
        let mut session = Session::new(SessionOptions::default());
        assert!(session.run_script(&stmts).is_err());
    }

    #[test]
    fn delete_maintains_views() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7), (2, 7);
             DELETE FROM T WHERE b = 7;
             SELECT a, SUM(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        assert!(msg.contains("2 row(s) deleted"), "{msg}");
        assert!(msg.contains("1 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        // Group a=2 vanished entirely.
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_with_minmax_view_recomputes() {
        let outcomes = run(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, MAX(b) AS m, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5), (1, 9);
             DELETE FROM T WHERE b = 9;
             SELECT a, MAX(b) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Ok(msg) = &outcomes[3] else {
            panic!("expected delete ack")
        };
        // MAX can loosen under deletes: the view must recompute (0
        // incremental), but the answer stays correct.
        assert!(msg.contains("0 view(s) maintained incrementally"), "{msg}");
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert_eq!(relation.rows, vec![vec![Value::Int(1), Value::Int(5)]]);
        assert_eq!(verified, &Some(true));
    }

    #[test]
    fn delete_everything() {
        let outcomes = run(
            "CREATE TABLE T (a);
             INSERT INTO T VALUES (1), (2);
             DELETE FROM T;
             SELECT a FROM T;",
            false,
        );
        let StatementOutcome::Answer { relation, .. } = &outcomes[3] else {
            panic!("expected an answer")
        };
        assert!(relation.is_empty());
    }

    #[test]
    fn repeated_select_hits_the_plan_cache() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             SELECT a, SUM(b) FROM T GROUP BY a;
             SELECT x.a, SUM(x.b) FROM T x GROUP BY x.a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        let outcomes = session.run_script(&stmts).expect("script runs");
        // The second SELECT is canonically identical (modulo the binding
        // name) and must be served from the cache with the same answer.
        assert_eq!(session.plan_cache().hits(), 1);
        let (
            StatementOutcome::Answer { relation: r1, .. },
            StatementOutcome::Answer { relation: r2, .. },
        ) = (&outcomes[3], &outcomes[4])
        else {
            panic!("expected answers")
        };
        assert_eq!(r1.sorted_rows(), r2.sorted_rows());
    }

    #[test]
    fn create_view_invalidates_cached_plans() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6);
             SELECT a, SUM(b) FROM T GROUP BY a;
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             SELECT a, SUM(b) FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        let outcomes = session.run_script(&stmts).expect("script runs");
        // The CREATE VIEW bumps the epoch: the second SELECT must re-run
        // the search (and now pick up the new view) instead of reusing the
        // stale base-table plan.
        assert_eq!(session.plan_cache().hits(), 0);
        assert_eq!(session.plan_cache().invalidations(), 1);
        let StatementOutcome::Answer { views_used, .. } = &outcomes[4] else {
            panic!("expected an answer")
        };
        assert_eq!(views_used, &vec!["V".to_string()]);
    }

    #[test]
    fn cached_answers_track_writes() {
        // A cached plan binds relations by name: INSERT/DELETE between two
        // hits must still produce fresh answers.
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 5);
             SELECT a, SUM(b) FROM T GROUP BY a;
             INSERT INTO T VALUES (1, 10), (2, 1);
             SELECT a, SUM(b) FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions {
            verify: true,
            ..SessionOptions::default()
        });
        let outcomes = session.run_script(&stmts).expect("script runs");
        assert_eq!(session.plan_cache().hits(), 1);
        let StatementOutcome::Answer {
            relation, verified, ..
        } = &outcomes[5]
        else {
            panic!("expected an answer")
        };
        assert_eq!(verified, &Some(true));
        let rows = relation.sorted_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(15)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn grouped_views_get_an_index() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             INSERT INTO T VALUES (1, 5), (1, 6), (2, 7);
             CREATE VIEW V AS SELECT a, SUM(b) AS s, COUNT(b) AS n FROM T GROUP BY a;
             INSERT INTO T VALUES (2, 1), (3, 9);
             DELETE FROM T WHERE b = 5;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions::default());
        session.run_script(&stmts).expect("script runs");
        let idx = session.database().index("V").expect("V is indexed");
        let rel = session.database().get("V").unwrap();
        assert!(idx.is_consistent_with(rel), "index tracks maintenance");
        assert_eq!(idx.key_cols(), &[0]);
    }

    #[test]
    fn index_can_be_disabled() {
        let stmts = parse_script(
            "CREATE TABLE T (a, b);
             CREATE VIEW V AS SELECT a, SUM(b) AS s FROM T GROUP BY a;",
        )
        .unwrap();
        let mut session = Session::new(SessionOptions {
            index_views: false,
            ..SessionOptions::default()
        });
        session.run_script(&stmts).expect("script runs");
        assert!(session.database().index("V").is_none());
    }

    #[test]
    fn cheapest_candidate_wins() {
        // Two usable views; the smaller one must be chosen.
        let outcomes = run(
            "CREATE TABLE T (a, b, c);
             INSERT INTO T VALUES (1,1,1),(1,2,1),(2,1,1),(2,2,1),(1,1,1);
             CREATE VIEW Fine AS SELECT a, b, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a, b;
             CREATE VIEW Coarse AS SELECT a, SUM(c) AS s, COUNT(c) AS n FROM T GROUP BY a;
             SELECT a, SUM(c) FROM T GROUP BY a;",
            true,
        );
        let StatementOutcome::Answer {
            views_used,
            verified,
            candidates,
            ..
        } = &outcomes[4]
        else {
            panic!("expected an answer")
        };
        assert!(*candidates >= 2);
        assert_eq!(views_used, &vec!["Coarse".to_string()]);
        assert_eq!(verified, &Some(true));
    }
}
