//! View selection in action (the paper's Section 7 future work): given a
//! query workload over the telephony warehouse, ask the advisor which
//! summary views to cache, adopt the best suggestion, and measure the
//! workload speedup it delivers — with every answer cross-checked against
//! base-table evaluation.
//!
//! Run with: `cargo run --release --example advisor`

use aggview::engine::datagen::{telephony, telephony_catalog, TelephonyConfig};
use aggview::engine::{execute, multiset_eq};
use aggview::rewrite::advisor::suggest_views;
use aggview::rewrite::{Rewriter, TableStats};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use std::time::Instant;

fn main() {
    let catalog = telephony_catalog();
    let mut db = telephony(
        &TelephonyConfig {
            n_customers: 500,
            n_plans: 10,
            n_calls: 100_000,
            years: vec![1994, 1995],
            months: 12,
        },
        9,
    );
    let mut stats = TableStats::new();
    for (name, rel) in db.iter() {
        stats.set(name.clone(), rel.len());
    }

    // A workload of related revenue queries.
    let workload: Vec<_> = [
        "SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year",
        "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
        "SELECT Plan_Id, Year, COUNT(Call_Id) FROM Calls GROUP BY Plan_Id, Year",
        "SELECT Plan_Id, AVG(Charge) FROM Calls WHERE Year = 1994 GROUP BY Plan_Id",
    ]
    .iter()
    .map(|s| parse_query(s).expect("valid SQL"))
    .collect();

    // Ask the advisor about the first (most general) workload query.
    let suggestions = suggest_views(&workload[0], &catalog, &stats).expect("advisor runs");
    println!("advisor suggestions for: {}", workload[0]);
    for s in suggestions.iter().take(3) {
        println!(
            "  benefit {:>12.0}  CREATE VIEW {} AS {}",
            s.benefit(),
            s.view.name,
            s.view.query
        );
    }
    let best = suggestions.first().expect("a suggestion exists");

    // The workload needs COUNT for the AVG query; extend the suggested view
    // if the advisor's pick lacks it (it includes COUNT by construction).
    let adopted = best.view.clone();
    println!(
        "\nadopting: CREATE VIEW {} AS {}",
        adopted.name, adopted.query
    );
    let t = Instant::now();
    materialize_views(&mut db, std::slice::from_ref(&adopted)).expect("view builds");
    println!(
        "materialized in {:?} ({} rows)",
        t.elapsed(),
        db.get(&adopted.name).expect("present").len()
    );

    // Answer the whole workload, preferring the adopted view.
    let rewriter = Rewriter::new(&catalog);
    let mut t_base_total = 0.0;
    let mut t_view_total = 0.0;
    let mut hits = 0;
    for q in &workload {
        let t = Instant::now();
        let truth = execute(q, &db).expect("base evaluation");
        let t_base = t.elapsed().as_secs_f64();
        t_base_total += t_base;

        let rws = rewriter
            .rewrite(q, std::slice::from_ref(&adopted))
            .expect("rewrite runs");
        match rws.first() {
            Some(rw) => {
                hits += 1;
                let t = Instant::now();
                let via = execute_rewriting(rw, &db).expect("view evaluation");
                let t_view = t.elapsed().as_secs_f64();
                t_view_total += t_view;
                assert!(
                    multiset_eq(&truth, &via),
                    "advisor view must answer exactly"
                );
                println!(
                    "  HIT  ({:>7.2} ms -> {:>6.3} ms) {q}",
                    t_base * 1e3,
                    t_view * 1e3
                );
            }
            None => {
                t_view_total += t_base;
                println!("  MISS ({:>7.2} ms, base tables) {q}", t_base * 1e3);
            }
        }
    }
    println!(
        "\nworkload: {hits}/{} queries answered from the adopted view; \
         {:.1} ms -> {:.1} ms ({:.0}x)",
        workload.len(),
        t_base_total * 1e3,
        t_view_total * 1e3,
        t_base_total / t_view_total.max(1e-9)
    );
    assert!(hits >= 3);
}
