//! Quickstart: define a schema, a materialized view, and a query; rewrite
//! the query to use the view; execute both and confirm they agree.
//!
//! Run with: `cargo run --example quickstart`

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;

fn main() {
    // 1. Schema: a sales fact table.
    let mut catalog = Catalog::new();
    catalog
        .add_table(TableSchema::new("Sales", ["Region", "Product", "Amount"]))
        .expect("fresh catalog");

    // 2. A materialized view: totals per (region, product), with a COUNT
    //    column so finer aggregates can be rolled up.
    let view = ViewDef::new(
        "RegionProductTotals",
        parse_query(
            "SELECT Region, Product, SUM(Amount) AS Total, COUNT(Amount) AS N \
             FROM Sales GROUP BY Region, Product",
        )
        .expect("valid SQL"),
    );

    // 3. A query the view can answer: totals per region alone.
    let query =
        parse_query("SELECT Region, SUM(Amount) FROM Sales GROUP BY Region").expect("valid SQL");

    // 4. Rewrite.
    let rewriter = Rewriter::new(&catalog);
    let rewritings = rewriter
        .rewrite(&query, std::slice::from_ref(&view))
        .expect("rewriting succeeds");
    println!("query:      {query}");
    println!("view {}: {}", view.name, view.query);
    for rw in &rewritings {
        println!("rewriting:  {}", rw.query);
    }

    // 5. Execute both against a small database and compare.
    let mut db = Database::new();
    let mut sales = Relation::empty(["Region", "Product", "Amount"]);
    for (region, product, amount) in [
        ("east", "widget", 10),
        ("east", "widget", 15),
        ("east", "gadget", 30),
        ("west", "widget", 7),
        ("west", "gadget", 12),
        ("west", "gadget", 12),
    ] {
        sales.push(vec![
            Value::from(region),
            Value::from(product),
            Value::Int(amount),
        ]);
    }
    db.insert("Sales", sales);
    materialize_views(&mut db, std::slice::from_ref(&view)).expect("view materializes");

    let original = execute(&query, &db).expect("query runs");
    let via_view = execute_rewriting(&rewritings[0], &db).expect("rewriting runs");
    println!("\noriginal answer:\n{original}");
    println!("answer via the view:\n{via_view}");
    assert!(multiset_eq(&original, &via_view));
    println!("multiset-equivalent: yes");
}
