//! Data-warehouse summary-table scenario (paper Section 1, "very large
//! transaction recording systems"): a hierarchy of summary tables over one
//! fact table, where coarser summaries are themselves rewritten to use
//! finer ones (view-over-view), and queries are routed to the cheapest
//! usable summary by the cost model.
//!
//! Run with: `cargo run --release --example warehouse_rollup`

use aggview::engine::datagen::{telephony, telephony_catalog, TelephonyConfig};
use aggview::engine::{execute, multiset_eq};
use aggview::rewrite::{Rewriter, TableStats, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;

fn main() {
    let catalog = telephony_catalog();
    let mut db = telephony(
        &TelephonyConfig {
            n_customers: 500,
            n_plans: 12,
            n_calls: 100_000,
            years: vec![1993, 1994, 1995],
            months: 12,
        },
        3,
    );

    // Summary hierarchy: daily -> monthly -> yearly, each with COUNT
    // columns so multiplicities are recoverable.
    let views = vec![
        ViewDef::new(
            "Daily",
            parse_query(
                "SELECT Plan_Id, Year, Month, Day, SUM(Charge) AS Revenue, \
                 COUNT(Call_Id) AS Calls_N \
                 FROM Calls GROUP BY Plan_Id, Year, Month, Day",
            )
            .expect("valid SQL"),
        ),
        ViewDef::new(
            "Monthly",
            parse_query(
                "SELECT Plan_Id, Year, Month, SUM(Revenue) AS Revenue, \
                 SUM(Calls_N) AS Calls_N \
                 FROM Daily GROUP BY Plan_Id, Year, Month",
            )
            .expect("valid SQL"),
        ),
        ViewDef::new(
            "Yearly",
            parse_query(
                "SELECT Plan_Id, Year, SUM(Revenue) AS Revenue \
                 FROM Monthly GROUP BY Plan_Id, Year",
            )
            .expect("valid SQL"),
        ),
    ];
    materialize_views(&mut db, &views).expect("summaries build");
    let mut stats = TableStats::new();
    for name in ["Calls", "Daily", "Monthly", "Yearly"] {
        stats.set(name, db.get(name).expect("present").len());
    }
    println!("summary sizes:");
    for name in ["Calls", "Daily", "Monthly", "Yearly"] {
        println!("  {name:8} {:>8} rows", stats.get(name));
    }

    let queries = [
        // Coarse: answerable from Yearly (and Monthly, and Daily).
        "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
        // Monthly granularity: Yearly is too coarse.
        "SELECT Plan_Id, Month, SUM(Charge) FROM Calls WHERE Year = 1995 \
         GROUP BY Plan_Id, Month",
        // Needs call counts: Yearly lacks the COUNT column.
        "SELECT Plan_Id, COUNT(Call_Id) FROM Calls GROUP BY Plan_Id",
    ];

    let rewriter = Rewriter::new(&catalog);
    for sql in queries {
        let q = parse_query(sql).expect("valid SQL");
        let mut rws = rewriter.rewrite(&q, &views).expect("rewrite runs");
        println!("\nquery: {sql}");
        if rws.is_empty() {
            println!("  no usable summary");
            continue;
        }
        rws.sort_by(|a, b| {
            a.cost(&stats)
                .partial_cmp(&b.cost(&stats))
                .expect("finite costs")
        });
        for rw in &rws {
            println!(
                "  candidate (cost {:>10.0}, views {:?}): {}",
                rw.cost(&stats),
                rw.views_used,
                rw.query
            );
        }
        let best = &rws[0];
        let truth = execute(&q, &db).expect("base evaluation");
        let fast = execute_rewriting(best, &db).expect("summary evaluation");
        assert!(multiset_eq(&truth, &fast), "summary answer must be exact");
        println!(
            "  -> answered from {:?} ({} rows)",
            best.views_used,
            fast.len()
        );
    }
}
