//! The paper's motivating Example 1.1: a telephony data warehouse where a
//! monthly-earnings summary view answers an annual revenue query orders of
//! magnitude faster than the raw `Calls` fact table.
//!
//! Run with: `cargo run --release --example telephony [n_calls]`

use aggview::engine::datagen::{telephony, telephony_catalog, TelephonyConfig};
use aggview::engine::{execute, multiset_eq};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use std::time::Instant;

fn main() {
    let n_calls: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let catalog = telephony_catalog();
    let cfg = TelephonyConfig {
        n_customers: 1000,
        n_plans: 10,
        n_calls,
        years: vec![1994, 1995],
        months: 12,
    };
    println!("generating warehouse with {n_calls} calls ...");
    let mut db = telephony(&cfg, 42);

    // The paper's query Q: plans that earned less than a million dollars
    // (here: cents) in 1995.
    let q = parse_query(
        "SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) \
         FROM Calls, Calling_Plans \
         WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 \
         GROUP BY Calling_Plans.Plan_Id, Plan_Name \
         HAVING SUM(Charge) < 100000000",
    )
    .expect("valid SQL");

    // The materialized view V1: monthly earnings per plan.
    let v1 = ViewDef::new(
        "V1",
        parse_query(
            "SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge) AS Monthly_Earnings \
             FROM Calls, Calling_Plans \
             WHERE Calls.Plan_Id = Calling_Plans.Plan_Id \
             GROUP BY Calls.Plan_Id, Plan_Name, Month, Year",
        )
        .expect("valid SQL"),
    );

    let t = Instant::now();
    materialize_views(&mut db, std::slice::from_ref(&v1)).expect("view materializes");
    println!(
        "materialized V1 ({} rows vs {} Calls rows) in {:?}",
        db.get("V1").expect("present").len(),
        db.get("Calls").expect("present").len(),
        t.elapsed()
    );

    let rewriter = Rewriter::new(&catalog);
    let t = Instant::now();
    let rws = rewriter
        .rewrite(&q, std::slice::from_ref(&v1))
        .expect("rewriting succeeds");
    println!("\nrewrite search took {:?}", t.elapsed());
    assert_eq!(rws.len(), 1, "Example 1.1 has exactly one rewriting");
    println!("Q  = {q}");
    println!("Q' = {}", rws[0].query);

    let t = Instant::now();
    let original = execute(&q, &db).expect("query runs");
    let t_original = t.elapsed();
    let t = Instant::now();
    let via_view = execute_rewriting(&rws[0], &db).expect("rewriting runs");
    let t_view = t.elapsed();

    assert!(multiset_eq(&original, &via_view), "answers must agree");
    println!("\nanswers agree ({} plans reported)", original.len());
    println!("evaluating Q  (base tables):     {t_original:?}");
    println!("evaluating Q' (materialized V1): {t_view:?}");
    println!(
        "speedup: {:.1}x",
        t_original.as_secs_f64() / t_view.as_secs_f64().max(1e-9)
    );
}
