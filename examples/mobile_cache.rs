//! Mobile-computing scenario (paper Section 1): a client caches the
//! results of previous queries as materialized views; later queries are
//! answered from the cache whenever the rewriter proves a cached view
//! usable, avoiding the (expensive, possibly unavailable) server link.
//!
//! The example builds a small cache of three prior query results and then
//! streams a workload of new queries, reporting per query whether it was
//! answered locally and with which rewriting — including the `explain`
//! diagnostics for cache misses.
//!
//! Run with: `cargo run --example mobile_cache`

use aggview::catalog::{Catalog, TableSchema};
use aggview::engine::{execute, multiset_eq, Database, Relation, Value};
use aggview::rewrite::{Rewriter, ViewDef};
use aggview::run::{execute_rewriting, materialize_views};
use aggview::sql::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn server_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut msgs = Relation::empty(["Msg_Id", "Sender", "Folder", "Day", "Size"]);
    for i in 0..5000 {
        msgs.push(vec![
            Value::Int(i),
            Value::Int(rng.random_range(0..40)),
            Value::Int(rng.random_range(0..6)),
            Value::Int(rng.random_range(1..29)),
            Value::Int(rng.random_range(1..5000)),
        ]);
    }
    db.insert("Messages", msgs);
    db
}

fn main() {
    let mut catalog = Catalog::new();
    catalog
        .add_table(
            TableSchema::new("Messages", ["Msg_Id", "Sender", "Folder", "Day", "Size"])
                .with_key(["Msg_Id"]),
        )
        .expect("fresh catalog");

    // The cache: results of three earlier queries, kept as views.
    let cache = vec![
        ViewDef::new(
            "CachedDaily",
            parse_query(
                "SELECT Folder, Day, SUM(Size) AS Bytes, COUNT(Msg_Id) AS N \
                 FROM Messages GROUP BY Folder, Day",
            )
            .expect("valid SQL"),
        ),
        ViewDef::new(
            "CachedInbox",
            parse_query("SELECT Msg_Id, Sender, Day, Size FROM Messages WHERE Folder = 0")
                .expect("valid SQL"),
        ),
        ViewDef::new(
            "CachedSenders",
            parse_query("SELECT Sender, MAX(Size) AS Biggest FROM Messages GROUP BY Sender")
                .expect("valid SQL"),
        ),
    ];

    // The incoming workload.
    let workload = [
        // Answerable from CachedDaily by coalescing days into folders.
        "SELECT Folder, SUM(Size) FROM Messages GROUP BY Folder",
        // Answerable from CachedDaily: counts roll up from the N column.
        "SELECT Folder, COUNT(Msg_Id) FROM Messages GROUP BY Folder",
        // Answerable from CachedInbox (conjunctive, residual Day filter).
        "SELECT Sender, Size FROM Messages WHERE Folder = 0 AND Day = 5",
        // Answerable from CachedSenders directly.
        "SELECT Sender, MAX(Size) FROM Messages GROUP BY Sender",
        // NOT answerable: needs per-sender sums, no cached view has them.
        "SELECT Sender, SUM(Size) FROM Messages GROUP BY Sender",
        // NOT answerable: AVG needs a COUNT column next to MAX.
        "SELECT Sender, AVG(Size) FROM Messages GROUP BY Sender",
    ];

    let server = server_database(7);
    let mut local = Database::new(); // the device: cache only
    {
        // Fill the cache from the server (one-time sync).
        let mut staging = server.clone();
        materialize_views(&mut staging, &cache).expect("cache fills");
        for v in &cache {
            local.insert(
                v.name.clone(),
                staging.get(&v.name).expect("cached").clone(),
            );
        }
    }

    let rewriter = Rewriter::new(&catalog);
    let mut hits = 0;
    for sql in workload {
        let q = parse_query(sql).expect("valid SQL");
        let rws = rewriter.rewrite(&q, &cache).expect("rewrite runs");
        match rws.first() {
            Some(rw) => {
                hits += 1;
                let answer = execute_rewriting(rw, &local).expect("local evaluation");
                // Cross-check against the server (the device could not).
                let truth = execute(&q, &server).expect("server evaluation");
                assert!(multiset_eq(&answer, &truth), "cache answer must be exact");
                println!("HIT  {sql}\n     -> {} ({} rows)", rw.query, answer.len());
            }
            None => {
                println!("MISS {sql}");
                for report in rewriter.explain(&q, &cache).expect("explain runs") {
                    if let Err(why) = &report.outcome {
                        println!("     {}: {}", report.view, why);
                    }
                }
            }
        }
    }
    println!(
        "\n{hits}/{} queries answered from the local cache",
        workload.len()
    );
    assert_eq!(hits, 4);
}
